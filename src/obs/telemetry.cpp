#include "obs/telemetry.h"

#include <algorithm>

namespace coolopt::obs {

namespace {

/// Two-pointer merge over name-sorted entry lists: keep `cur` entries that
/// are new or whose value differs under `changed`.
template <typename Value, typename Changed>
void merge_changed(const std::vector<std::pair<std::string, Value>>& prev,
                   const std::vector<std::pair<std::string, Value>>& cur,
                   std::vector<std::pair<std::string, Value>>& out,
                   Changed changed) {
  out.clear();
  size_t i = 0;
  for (const auto& entry : cur) {
    while (i < prev.size() && prev[i].first < entry.first) ++i;
    if (i < prev.size() && prev[i].first == entry.first) {
      if (changed(prev[i].second, entry.second)) out.push_back(entry);
    } else {
      out.push_back(entry);  // new since prev
    }
  }
}

}  // namespace

void telemetry_delta(const MetricsSnapshot& prev, const MetricsSnapshot& cur,
                     MetricsDelta& out) {
  out.from_sequence = prev.sequence;
  out.to_sequence = cur.sequence;
  merge_changed(prev.counters, cur.counters, out.counters,
                [](uint64_t a, uint64_t b) { return a != b; });
  merge_changed(prev.gauges, cur.gauges, out.gauges,
                [](double a, double b) { return a != b; });
  merge_changed(prev.histograms, cur.histograms, out.histograms,
                [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
                  return a.count != b.count;
                });
}

SeriesRing::SeriesRing(size_t capacity) : buf_(std::max<size_t>(1, capacity)) {}

void SeriesRing::push(uint64_t sequence, double value) {
  const size_t cap = buf_.size();
  if (size_ < cap) {
    buf_[(head_ + size_) % cap] = SeriesSample{sequence, value};
    ++size_;
    return;
  }
  buf_[head_] = SeriesSample{sequence, value};  // overwrite the oldest
  head_ = (head_ + 1) % cap;
  ++dropped_;
}

std::vector<SeriesSample> SeriesRing::samples() const {
  std::vector<SeriesSample> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(buf_[(head_ + i) % buf_.size()]);
  return out;
}

TelemetryHistory::TelemetryHistory(size_t capacity_per_metric)
    : cap_(std::max<size_t>(1, capacity_per_metric)) {}

SeriesRing& TelemetryHistory::ring_for(const std::string& name) {
  auto it = rings_.find(name);
  if (it == rings_.end()) it = rings_.emplace(name, SeriesRing(cap_)).first;
  return it->second;
}

void TelemetryHistory::record(const MetricsDelta& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, v] : delta.counters) {
    ring_for(name).push(delta.to_sequence, static_cast<double>(v));
  }
  for (const auto& [name, v] : delta.gauges) {
    ring_for(name).push(delta.to_sequence, v);
  }
  for (const auto& [name, s] : delta.histograms) {
    ring_for(name).push(delta.to_sequence, static_cast<double>(s.count));
  }
}

std::vector<SeriesSample> TelemetryHistory::series(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = rings_.find(name);
  if (it == rings_.end()) return {};
  return it->second.samples();
}

std::vector<std::string> TelemetryHistory::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(rings_.size());
  for (const auto& [name, _] : rings_) out.push_back(name);
  return out;
}

}  // namespace coolopt::obs
