#include "obs/session.h"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "obs/json_writer.h"
#include "obs/obs.h"
#include "util/log.h"
#include "util/strings.h"

namespace coolopt::obs {
namespace {

/// If `arg` is `--NAME=VALUE` or `--NAME` (value in the next slot), fills
/// `value` and returns how many argv slots were consumed (0 = no match).
size_t match_flag(const std::vector<std::string>& args, size_t i,
                  const std::string& name, std::string& value) {
  const std::string eq = "--" + name + "=";
  if (util::starts_with(args[i], eq)) {
    value = args[i].substr(eq.size());
    return 1;
  }
  if (args[i] == "--" + name && i + 1 < args.size()) {
    value = args[i + 1];
    return 2;
  }
  return 0;
}

}  // namespace

std::vector<std::string> strip_obs_flags(const std::vector<std::string>& args,
                                         std::string& metrics_out,
                                         std::string& trace_out) {
  std::vector<std::string> rest;
  rest.reserve(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    size_t used = match_flag(args, i, "metrics-out", metrics_out);
    if (used == 0) used = match_flag(args, i, "trace-out", trace_out);
    if (used == 0) {
      rest.push_back(args[i]);
    } else {
      i += used - 1;
    }
  }
  return rest;
}

ObsSession::ObsSession(int& argc, char** argv) {
  // Consume our flags and compact argv in place (argv entries are stable
  // C strings owned by the runtime; only the pointers move).
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string cur(argv[r]);
    if (util::starts_with(cur, "--metrics-out=")) {
      metrics_path_ = cur.substr(std::string("--metrics-out=").size());
      continue;
    }
    if (cur == "--metrics-out" && r + 1 < argc) {
      metrics_path_ = argv[++r];
      continue;
    }
    if (util::starts_with(cur, "--trace-out=")) {
      trace_path_ = cur.substr(std::string("--trace-out=").size());
      continue;
    }
    if (cur == "--trace-out" && r + 1 < argc) {
      trace_path_ = argv[++r];
      continue;
    }
    argv[w++] = argv[r];
  }
  if (w != argc) {
    argc = w;
    argv[argc] = nullptr;
  }

  if (metrics_path_.empty()) {
    if (const char* env = std::getenv("COOLOPT_METRICS_OUT")) metrics_path_ = env;
  }
  if (trace_path_.empty()) {
    if (const char* env = std::getenv("COOLOPT_TRACE_OUT")) trace_path_ = env;
  }
  init();
}

ObsSession::ObsSession(std::string metrics_out, std::string trace_out)
    : metrics_path_(std::move(metrics_out)), trace_path_(std::move(trace_out)) {
  init();
}

void ObsSession::init() {
  if (metrics_path_.empty() && trace_path_.empty()) return;
  registry_ = std::make_unique<MetricsRegistry>();
  trace_ = std::make_unique<RunTrace>();
  attach_metrics(registry_.get());
  attach_trace(trace_.get());
}

void ObsSession::flush() {
  if (!active()) return;
  if (!metrics_path_.empty()) {
    std::ofstream os(metrics_path_);
    if (!os) {
      throw std::runtime_error("ObsSession: cannot open " + metrics_path_);
    }
    JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "coolopt.obs.v1");
    w.kv("sequence", registry_->advance_sequence());
    w.key("metrics");
    registry_->write_json(w);
    w.key("trace");
    trace_->write_json(w);
    w.end_object();
    os << "\n";
  }
  if (!trace_path_.empty()) {
    std::ofstream os(trace_path_);
    if (!os) {
      throw std::runtime_error("ObsSession: cannot open " + trace_path_);
    }
    trace_->steps_to_csv(os);
  }
}

ObsSession::~ObsSession() {
  if (!active()) return;
  // Detach before exporting so the export itself is not instrumented.
  if (metrics() == registry_.get()) attach_metrics(nullptr);
  if (obs::trace() == trace_.get()) attach_trace(nullptr);
  try {
    flush();
  } catch (const std::exception& e) {
    util::log_error("ObsSession: %s", e.what());
  }
}

}  // namespace coolopt::obs
