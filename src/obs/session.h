// Process-level observability session for CLI binaries.
//
// Owns a MetricsRegistry + RunTrace, attaches them to the global sinks for
// the life of the session, and writes the exports on destruction:
//
//   * metrics path — one combined JSON document:
//       {"schema":"coolopt.obs.v1","metrics":{...},"trace":{...}}
//   * trace path   — the per-timestep series as CSV.
//
// Construction either consumes the standard flags from argv (so every
// bench/fig binary gains `--metrics-out` / `--trace-out` by creating one
// before doing work), or takes explicit paths (cooloptctl). The env vars
// COOLOPT_METRICS_OUT / COOLOPT_TRACE_OUT are fallbacks for binaries whose
// argv is owned by another parser. Empty paths mean "no sink": nothing is
// allocated or attached and instrumentation stays on its zero-cost path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_trace.h"

namespace coolopt::obs {

/// Removes `--metrics-out[= ]PATH` and `--trace-out[= ]PATH` from `args`,
/// returning the remaining arguments. Later occurrences win.
std::vector<std::string> strip_obs_flags(const std::vector<std::string>& args,
                                         std::string& metrics_out,
                                         std::string& trace_out);

class ObsSession {
 public:
  /// Consumes the obs flags from (argc, argv) in place (argv[0] is kept);
  /// falls back to COOLOPT_METRICS_OUT / COOLOPT_TRACE_OUT.
  ObsSession(int& argc, char** argv);

  /// Explicit paths; empty string disables the corresponding sink.
  ObsSession(std::string metrics_out, std::string trace_out);

  /// Flushes the exports and detaches the global sinks.
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// True when at least one output path is configured.
  bool active() const { return registry_ != nullptr; }

  /// Writes the configured outputs now (also called by the destructor;
  /// rewrites whole files, so calling twice is safe). Each flush advances
  /// the registry's snapshot sequence and stamps it into the document's
  /// top-level "sequence" field, so successive on-demand exports (e.g. one
  /// per cooloptd drain) are ordered. Throws std::runtime_error if an
  /// output file cannot be opened — except from the destructor, where
  /// failures are logged instead.
  void flush();

  MetricsRegistry* registry() { return registry_.get(); }
  RunTrace* run_trace() { return trace_.get(); }

 private:
  void init();

  std::string metrics_path_;
  std::string trace_path_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<RunTrace> trace_;
};

}  // namespace coolopt::obs
