// Per-request span context: a trace_id plus a flat, parent-linked list of
// timed spans, built to ride the zero-allocation warm solve path.
//
// Design constraints (issue 9):
//  - Warm traced solves must not allocate: records live in a grow-only
//    vector that reset() clears without releasing capacity, and span names
//    are string literals (the context never owns or copies name storage).
//  - FleetEngine solves shards on a thread pool, so the serial begin()/end()
//    stack discipline cannot be used inside the fan-out. Instead the request
//    thread pre-creates one slot per shard with open_slot() BEFORE the
//    parallel section; each worker then touches only its own record via
//    slot_begin()/slot_end(). The vector never grows during the fan-out and
//    no two threads share a record, so the section is race-free without a
//    lock, and record order (= slot creation order) is deterministic.
//
// Timestamps are microseconds on the steady clock, relative to the epoch
// captured by reset(), so a serialized trace is self-contained.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace coolopt::obs {

/// One timed span. `name` must be a string literal (or otherwise outlive
/// the context); `parent` indexes the owning context's records (-1 = root);
/// `detail` is a small free-form payload — the fleet layer stores the shard
/// index, -1 means "none".
struct SpanRecord {
  const char* name = "";
  int32_t parent = -1;
  int64_t detail = -1;
  double start_us = 0.0;
  double dur_us = 0.0;
};

class SpanContext {
 public:
  /// Starts a fresh trace: drops prior records (capacity retained), stamps
  /// the trace id, and re-anchors the time epoch at "now".
  void reset(uint64_t trace_id);

  uint64_t trace_id() const { return trace_id_; }
  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }
  const std::vector<SpanRecord>& records() const { return records_; }

  /// Serial API (single-threaded, stack discipline): opens a span whose
  /// parent is the innermost still-open serial span. Returns its index.
  int begin(const char* name, int64_t detail = -1);
  /// Closes the span opened by begin(); `index` must be its return value.
  void end(int index);

  /// Parallel-section API: pre-creates an unstarted record (call serially,
  /// before the fan-out). Workers then bracket their own slot with
  /// slot_begin()/slot_end(); nothing else may touch the context until the
  /// fan-out joins.
  int open_slot(const char* name, int parent, int64_t detail = -1);
  void slot_begin(int index);
  void slot_end(int index);

  /// Index of the innermost open serial span, -1 when none.
  int current() const { return current_; }

 private:
  double since_epoch_us() const;

  uint64_t trace_id_ = 0;
  int current_ = -1;
  std::vector<SpanRecord> records_;
  std::chrono::steady_clock::time_point epoch_{};
};

}  // namespace coolopt::obs
