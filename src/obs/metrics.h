// Thread-safe metrics: counters, gauges, and latency histograms.
//
// Design (issue: "instrumentation must compile to near-zero cost when no
// sink is attached"): the library's hot paths never talk to a
// MetricsRegistry directly — they go through the nullable global attach
// point in obs/obs.h, so an unattached run pays one relaxed atomic load and
// a predictable branch per instrumented site. When a registry IS attached,
// instruments are looked up by name under the registry mutex and updated
// with relaxed atomics (counters/gauges) or a short critical section
// (histograms).
//
// Histograms retain exact samples up to a cap and then switch to uniform
// reservoir sampling (Vitter's Algorithm R with a deterministic LCG), so
// p50/p95/p99 stay exact for every workload this repo ships and remain
// unbiased estimates for pathological multi-million-sample runs. count,
// sum, min and max are always exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace coolopt::obs {

class JsonWriter;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregate view of a histogram at one instant.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;   ///< 0 when empty
  double max = 0.0;   ///< 0 when empty
  double mean = 0.0;  ///< 0 when empty
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class Histogram {
 public:
  /// `sample_cap` bounds retained samples (>= 1); beyond it, reservoir
  /// sampling keeps an unbiased subset.
  explicit Histogram(size_t sample_cap = kDefaultSampleCap);

  void observe(double v);

  uint64_t count() const;
  /// Aggregates are exact; the p50/p95/p99 fields interpolate over at most
  /// kPercentileBudget retained samples — beyond that, a deterministic
  /// stride subsample (every ceil(n/budget)-th sample) bounds the copy-and-
  /// sort cost so interval snapshotting (the telemetry broadcaster samples
  /// every subscriber interval) stays cheap no matter how full the buffer.
  HistogramSnapshot snapshot() const;
  /// Linear-interpolated percentile over the retained samples, p in [0,100].
  /// Exact over the full retained set (no stride): this is the offline /
  /// test-assertion accessor, not the streaming one.
  double percentile(double p) const;

  /// Discards every retained sample and aggregate (count/sum/min/max) while
  /// keeping the sample buffer's capacity, and rewinds the reservoir LCG to
  /// its initial seed so each window replays the same deterministic stream.
  /// Interval snapshotting for telemetry streaming: snapshot(), then
  /// reset_window() to start the next interval from empty.
  void reset_window();

  static constexpr size_t kDefaultSampleCap = 1 << 18;
  static constexpr size_t kPercentileBudget = 4096;
  static constexpr uint64_t kLcgSeed = 0x9e3779b97f4a7c15ull;

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
  size_t sample_cap_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  uint64_t lcg_ = kLcgSeed;  // deterministic reservoir stream
};

/// Point-in-time copy of every instrument in a registry, stamped with the
/// registry's monotone snapshot sequence number. Entries are sorted by name
/// (the registry maps are ordered), which telemetry_delta relies on.
struct MetricsSnapshot {
  uint64_t sequence = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  void clear() {
    sequence = 0;
    counters.clear();
    gauges.clear();
    histograms.clear();
  }
};

/// Named instrument directory. Instruments are created on first use and
/// live as long as the registry (references remain valid; the registry is
/// append-only).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Copies every instrument into `out` (reusing its buffers) and stamps it
  /// with the next value of the registry's snapshot sequence. Lock-light:
  /// the registry mutex is held only to walk the append-only maps; counter
  /// and gauge values are relaxed atomic reads and histogram snapshots take
  /// each histogram's own short lock.
  void snapshot(MetricsSnapshot& out) const;

  /// Sequence number the next snapshot() call will be stamped with, minus
  /// one — i.e. how many snapshots have been taken so far.
  uint64_t snapshot_sequence() const {
    return seq_.load(std::memory_order_relaxed);
  }

  /// Claims the next sequence number without copying instruments — for
  /// exporters (ObsSession::flush) that serialize the registry directly but
  /// still participate in the same ordering as snapshot() consumers.
  uint64_t advance_sequence() const {
    return seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Sorted instrument names per kind (for export and tests).
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Emits {"counters":{...},"gauges":{...},"histograms":{...}} as one JSON
  /// object into an in-flight writer (callers own the enclosing document).
  void write_json(JsonWriter& w) const;
  /// Convenience: the same object as a standalone JSON document.
  void to_json(std::ostream& os) const;

  /// Flat CSV export: name,kind,count,sum,min,max,mean,p50,p95,p99 —
  /// counters fill `count`, gauges fill `sum` (their value), histograms
  /// fill everything.
  void to_csv(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  mutable std::atomic<uint64_t> seq_{0};
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace coolopt::obs
