#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json_writer.h"
#include "util/csv.h"
#include "util/strings.h"

namespace coolopt::obs {

Histogram::Histogram(size_t sample_cap) : sample_cap_(std::max<size_t>(1, sample_cap)) {
  samples_.reserve(std::min<size_t>(sample_cap_, 1024));
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (samples_.size() < sample_cap_) {
    samples_.push_back(v);
    return;
  }
  // Reservoir (Algorithm R): keep sample i with probability cap/i.
  lcg_ = lcg_ * 6364136223846793005ull + 1442695040888963407ull;
  const uint64_t slot = (lcg_ >> 16) % count_;
  if (slot < sample_cap_) samples_[slot] = v;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument("Histogram::percentile: p outside [0,100]");
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.count = count_;
    s.sum = sum_;
    s.min = count_ > 0 ? min_ : 0.0;
    s.max = count_ > 0 ? max_ : 0.0;
    s.mean = count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
    const size_t n = samples_.size();
    if (n <= kPercentileBudget) {
      sorted = samples_;
    } else {
      // Deterministic stride subsample: bounds the copy (under the lock,
      // where observers wait) and the sort below to kPercentileBudget
      // elements. The broadcaster snapshots every registry histogram once
      // per tick interval, so this cost is on the streaming steady state.
      const size_t stride = (n + kPercentileBudget - 1) / kPercentileBudget;
      sorted.reserve((n + stride - 1) / stride);
      for (size_t i = 0; i < n; i += stride) sorted.push_back(samples_[i]);
    }
  }
  if (!sorted.empty()) {
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double p) {
      const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
      const size_t lo = static_cast<size_t>(rank);
      const size_t hi = std::min(lo + 1, sorted.size() - 1);
      const double frac = rank - static_cast<double>(lo);
      return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
    };
    s.p50 = at(50.0);
    s.p95 = at(95.0);
    s.p99 = at(99.0);
  }
  return s;
}

void Histogram::reset_window() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();  // keeps capacity for the next window
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  lcg_ = kLcgSeed;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

template <typename Map>
std::vector<std::string> keys_of(std::mutex& mu, const Map& map) {
  std::lock_guard<std::mutex> lock(mu);
  std::vector<std::string> names;
  names.reserve(map.size());
  for (const auto& [name, _] : map) names.push_back(name);
  return names;
}

}  // namespace

void MetricsRegistry::snapshot(MetricsSnapshot& out) const {
  out.counters.clear();
  out.gauges.clear();
  out.histograms.clear();
  // Collect stable instrument pointers under the registry lock, then read
  // values after releasing it: instruments are never destroyed while the
  // registry lives, so emitters only ever contend on their own instrument.
  thread_local std::vector<std::pair<const std::string*, const Counter*>> cs;
  thread_local std::vector<std::pair<const std::string*, const Gauge*>> gs;
  thread_local std::vector<std::pair<const std::string*, const Histogram*>> hs;
  cs.clear();
  gs.clear();
  hs.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) cs.emplace_back(&name, c.get());
    for (const auto& [name, g] : gauges_) gs.emplace_back(&name, g.get());
    for (const auto& [name, h] : histograms_) hs.emplace_back(&name, h.get());
  }
  out.counters.reserve(cs.size());
  out.gauges.reserve(gs.size());
  out.histograms.reserve(hs.size());
  for (const auto& [name, c] : cs) out.counters.emplace_back(*name, c->value());
  for (const auto& [name, g] : gs) out.gauges.emplace_back(*name, g->value());
  for (const auto& [name, h] : hs) out.histograms.emplace_back(*name, h->snapshot());
  out.sequence = advance_sequence();
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  return keys_of(mu_, counters_);
}
std::vector<std::string> MetricsRegistry::gauge_names() const {
  return keys_of(mu_, gauges_);
}
std::vector<std::string> MetricsRegistry::histogram_names() const {
  return keys_of(mu_, histograms_);
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g->value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    w.key(name);
    w.begin_object();
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.kv("mean", s.mean);
    w.kv("p50", s.p50);
    w.kv("p95", s.p95);
    w.kv("p99", s.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void MetricsRegistry::to_json(std::ostream& os) const {
  JsonWriter w(os);
  write_json(w);
}

void MetricsRegistry::to_csv(std::ostream& os) const {
  util::CsvWriter w(os, {"name", "kind", "count", "sum", "min", "max", "mean",
                         "p50", "p95", "p99"});
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    w.row({name, "counter", util::strf("%llu", static_cast<unsigned long long>(c->value())),
           "", "", "", "", "", "", ""});
  }
  for (const auto& [name, g] : gauges_) {
    w.row({name, "gauge", "", util::strf("%.6g", g->value()), "", "", "", "", "", ""});
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    w.row({name, "histogram",
           util::strf("%llu", static_cast<unsigned long long>(s.count)),
           util::strf("%.6g", s.sum), util::strf("%.6g", s.min),
           util::strf("%.6g", s.max), util::strf("%.6g", s.mean),
           util::strf("%.6g", s.p50), util::strf("%.6g", s.p95),
           util::strf("%.6g", s.p99)});
  }
}

}  // namespace coolopt::obs
