#include "obs/json_writer.h"

#include <cctype>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "util/jsonio.h"
#include "util/strings.h"

namespace coolopt::obs {

std::string json_quote(std::string_view s) { return util::json_quote(s); }

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

void JsonWriter::before_value() {
  if (root_done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;  // the root container itself
  if (stack_.back() == Scope::kObject && !key_pending_) {
    throw std::logic_error("JsonWriter: value in object without a key");
  }
  if (stack_.back() == Scope::kArray && has_items_.back()) os_ << ',';
  has_items_.back() = true;
  key_pending_ = false;
}

void JsonWriter::push(Scope s) {
  before_value();
  os_ << (s == Scope::kObject ? '{' : '[');
  stack_.push_back(s);
  has_items_.push_back(false);
}

void JsonWriter::pop(Scope s) {
  if (stack_.empty() || stack_.back() != s) {
    throw std::logic_error("JsonWriter: mismatched container close");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: dangling key at close");
  os_ << (s == Scope::kObject ? '}' : ']');
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) root_done_ = true;
}

void JsonWriter::begin_object() { push(Scope::kObject); }
void JsonWriter::end_object() { pop(Scope::kObject); }
void JsonWriter::begin_array() { push(Scope::kArray); }
void JsonWriter::end_array() { pop(Scope::kArray); }

void JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: two keys in a row");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  os_ << json_quote(name) << ':';
  key_pending_ = true;
  // The upcoming value's separator was emitted here; mark "no item yet" so
  // before_value() does not add a second comma.
  has_items_.back() = true;
}

void JsonWriter::value(std::string_view s) {
  if (key_pending_) {
    key_pending_ = false;
    os_ << json_quote(s);
    return;
  }
  before_value();
  os_ << json_quote(s);
}

void JsonWriter::value(const char* s) { value(std::string_view(s)); }

void JsonWriter::value(double v) {
  if (!std::isfinite(v)) {
    value_null();
    return;
  }
  const std::string text = util::json_number(v);
  if (key_pending_) {
    key_pending_ = false;
    os_ << text;
    return;
  }
  before_value();
  os_ << text;
}

void JsonWriter::value(bool v) {
  const char* text = v ? "true" : "false";
  if (key_pending_) {
    key_pending_ = false;
    os_ << text;
    return;
  }
  before_value();
  os_ << text;
}

void JsonWriter::value(uint64_t v) {
  const std::string text = util::strf("%llu", static_cast<unsigned long long>(v));
  if (key_pending_) {
    key_pending_ = false;
    os_ << text;
    return;
  }
  before_value();
  os_ << text;
}

void JsonWriter::value(int64_t v) {
  const std::string text = util::strf("%lld", static_cast<long long>(v));
  if (key_pending_) {
    key_pending_ = false;
    os_ << text;
    return;
  }
  before_value();
  os_ << text;
}

void JsonWriter::value_null() {
  if (key_pending_) {
    key_pending_ = false;
    os_ << "null";
    return;
  }
  before_value();
  os_ << "null";
}

// ---------------------------------------------------------------------------
// Syntax checker
// ---------------------------------------------------------------------------

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  bool run(std::string* error) {
    if (!value()) {
      if (error != nullptr) {
        *error = util::strf("JSON syntax error near offset %zu", pos_);
      }
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (error != nullptr) {
        *error = util::strf("trailing garbage at offset %zu", pos_);
      }
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() { return util::json_scan_number(s_, pos_); }

  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      if (!eat(':')) return false;
      if (!value()) return false;
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    while (true) {
      if (!value()) return false;
      if (eat(',')) continue;
      return eat(']');
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

bool json_syntax_valid(std::string_view text, std::string* error) {
  return JsonChecker(text).run(error);
}

}  // namespace coolopt::obs
