// Telemetry streaming support: snapshot deltas and bounded per-metric
// time-series rings.
//
// A streaming tick is "what changed since the subscriber's last snapshot":
// telemetry_delta() merges two sorted MetricsSnapshot instances and keeps
// the entries that are new or whose value moved (histograms compare by
// count — a histogram with no new observations is unchanged by
// construction). Against a default-constructed snapshot the delta is the
// full baseline, which is exactly what a subscriber's first tick should be.
//
// SeriesRing is a fixed-capacity drop-oldest ring of (sequence, value)
// samples; TelemetryHistory keeps one ring per metric so embedders (and
// tests) can ask "what did service.queue.depth do over the last N ticks"
// without re-parsing the stream.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace coolopt::obs {

/// Changed-entries view between two snapshots of the same registry.
/// Values are cumulative (the new value), not differences — a consumer
/// that wants rates divides by the tick interval itself.
struct MetricsDelta {
  uint64_t from_sequence = 0;
  uint64_t to_sequence = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  void clear() {
    from_sequence = 0;
    to_sequence = 0;
    counters.clear();
    gauges.clear();
    histograms.clear();
  }
};

/// Fills `out` (reusing its buffers) with every entry of `cur` that is
/// absent from `prev` or carries a different value. Both snapshots must
/// come from the same registry (entries sorted by name); instruments never
/// disappear because registries are append-only.
void telemetry_delta(const MetricsSnapshot& prev, const MetricsSnapshot& cur,
                     MetricsDelta& out);

/// One retained time-series point: the snapshot sequence that produced it
/// plus the metric's value at that instant.
struct SeriesSample {
  uint64_t sequence = 0;
  double value = 0.0;
};

/// Fixed-capacity drop-oldest ring buffer of SeriesSample.
class SeriesRing {
 public:
  explicit SeriesRing(size_t capacity);

  void push(uint64_t sequence, double value);

  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }
  /// Samples evicted to make room since construction.
  uint64_t dropped() const { return dropped_; }
  /// Retained samples, oldest first.
  std::vector<SeriesSample> samples() const;

 private:
  std::vector<SeriesSample> buf_;
  size_t head_ = 0;  // index of the oldest sample
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

/// Per-metric ring directory fed by the service broadcaster: record() files
/// every changed counter and gauge of a delta (histograms are recorded by
/// their cumulative count under the same name). Thread-safe.
class TelemetryHistory {
 public:
  explicit TelemetryHistory(size_t capacity_per_metric = 256);

  void record(const MetricsDelta& delta);

  /// Retained series for one metric, oldest first (empty when never seen).
  std::vector<SeriesSample> series(const std::string& name) const;
  std::vector<std::string> names() const;
  size_t capacity_per_metric() const { return cap_; }

 private:
  SeriesRing& ring_for(const std::string& name);

  mutable std::mutex mu_;
  size_t cap_;
  std::map<std::string, SeriesRing> rings_;
};

}  // namespace coolopt::obs
