// Global observability attach points.
//
// The library's hot paths are instrumented against *nullable* globals: an
// unattached run (the default — every existing caller) pays one relaxed
// atomic pointer load and a predicted-not-taken branch per site, which is
// the "near-zero cost when no sink is attached" contract the perf suites
// hold us to. Attaching is explicit and scoped:
//
//   obs::MetricsRegistry registry;
//   obs::RunTrace trace;
//   {
//     obs::ScopedObservation scope(&registry, &trace);
//     harness.measure(...);             // instrumented internals record
//   }                                   // detached again here
//   registry.to_json(std::cout);
//
// Attach/detach is not synchronized against concurrently *running*
// instrumented code — attach before starting work, detach after it ends
// (exactly what ObsSession and ScopedObservation do).
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/run_trace.h"

namespace coolopt::obs {

namespace detail {
inline std::atomic<MetricsRegistry*> g_metrics{nullptr};
inline std::atomic<RunTrace*> g_trace{nullptr};
}  // namespace detail

/// Currently attached registry/trace, or nullptr. Inline so the unattached
/// fast path is a single relaxed load + branch at the call site, not a
/// cross-TU function call.
inline MetricsRegistry* metrics() {
  return detail::g_metrics.load(std::memory_order_relaxed);
}
inline RunTrace* trace() {
  return detail::g_trace.load(std::memory_order_relaxed);
}

/// Replaces the global sink (nullptr detaches). Returns the previous one.
inline MetricsRegistry* attach_metrics(MetricsRegistry* registry) {
  return detail::g_metrics.exchange(registry, std::memory_order_acq_rel);
}
inline RunTrace* attach_trace(RunTrace* run_trace) {
  return detail::g_trace.exchange(run_trace, std::memory_order_acq_rel);
}

/// RAII attach for a lexical scope; restores the previous sinks on exit.
class ScopedObservation {
 public:
  explicit ScopedObservation(MetricsRegistry* registry, RunTrace* run_trace = nullptr)
      : prev_metrics_(attach_metrics(registry)), prev_trace_(attach_trace(run_trace)) {}
  ~ScopedObservation() {
    attach_metrics(prev_metrics_);
    attach_trace(prev_trace_);
  }
  ScopedObservation(const ScopedObservation&) = delete;
  ScopedObservation& operator=(const ScopedObservation&) = delete;

 private:
  MetricsRegistry* prev_metrics_;
  RunTrace* prev_trace_;
};

// --- one-line instrumentation helpers (all no-ops when unattached) ---

inline void count(const char* name, uint64_t n = 1) {
  if (MetricsRegistry* m = metrics()) m->counter(name).inc(n);
}

inline void gauge_set(const char* name, double v) {
  if (MetricsRegistry* m = metrics()) m->gauge(name).set(v);
}

inline void observe(const char* name, double v) {
  if (MetricsRegistry* m = metrics()) m->histogram(name).observe(v);
}

/// Histogram handle for ScopedTimer sites; nullptr when unattached.
inline Histogram* maybe_histogram(const char* name) {
  MetricsRegistry* m = metrics();
  return m != nullptr ? &m->histogram(name) : nullptr;
}

}  // namespace coolopt::obs
