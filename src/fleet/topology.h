// Fleet topology: the datacenter as a set of room shards, each a complete
// RoomModel with its own CRAC. The paper solves one machine room; the
// decomposition in Rostami et al.'s large-scale frameworks — and the one
// FleetEngine implements — keeps the per-room model exactly as fitted and
// splits the global load target across rooms, so a shard is just a
// SharedRoomModel plus a name for attribution.
//
// Validation follows the fault-target convention: every error names the
// offending shard index (and shard name) plus the bound it violated, so a
// bad topology is diagnosable from the exception message alone.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/model.h"

namespace coolopt::fleet {

struct FleetShard {
  std::string name;             ///< attribution label, e.g. "room-3"
  core::SharedRoomModel model;  ///< the shard's fitted room model
};

struct FleetTopology {
  std::vector<FleetShard> shards;

  size_t size() const { return shards.size(); }

  /// Sum of machine counts across shards.
  size_t total_machines() const;
  /// Sum of room capacities (files/s) across shards.
  double total_capacity() const;

  /// Throws std::invalid_argument naming the offending shard index on the
  /// first violation: empty fleet, unnamed shard, null or empty room
  /// model, or a room model that fails its own validation (the underlying
  /// message is preserved, prefixed with the shard attribution).
  void validate() const;
};

/// Splits one room round-robin into `shards` rooms that share the room-level
/// parameters (T_max, CRAC bounds, cooler model, recirculation): machine i
/// lands in shard i % shards, preserving relative machine order within each
/// shard. This is the canonical way to compare a monolithic engine against
/// a sharded fleet over the SAME machines, and what cooloptd uses for its
/// fleet-aware plan mode. Throws std::invalid_argument when `shards` is 0
/// or exceeds the machine count (the error names both numbers).
FleetTopology partition_room(const core::RoomModel& room, size_t shards);

}  // namespace coolopt::fleet
