#include "fleet/fleet_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/scratch.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace coolopt::fleet {
namespace {

double now_us() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::micro>(t).count();
}

/// Cache key covering ad-hoc scenarios too (number alone is 0 for those).
int scenario_key(const core::Scenario& s) {
  return (s.number << 4) | (static_cast<int>(s.distribution) << 2) |
         (s.ac_control ? 2 : 0) | (s.consolidation ? 1 : 0);
}

}  // namespace

const char* to_string(ShardStatus status) {
  switch (status) {
    case ShardStatus::kOk: return "ok";
    case ShardStatus::kDegraded: return "degraded";
    case ShardStatus::kDown: return "down";
  }
  return "?";
}

size_t FleetPlanResult::shards_down() const {
  size_t n = 0;
  for (const ShardStatus s : shard_status) {
    if (s == ShardStatus::kDown) ++n;
  }
  return n;
}

bool FleetPlanResult::feasible() const {
  if (shed_load > 0.0) return false;
  bool any_serving = false;
  for (size_t s = 0; s < shard_results.size(); ++s) {
    if (s < shard_status.size() && shard_status[s] == ShardStatus::kDown) {
      continue;  // excluded: its load lives on in the survivors' plans
    }
    any_serving = true;
    const core::PlanResult& r = shard_results[s];
    if (!r.error.empty() || !r.plan.has_value()) return false;
  }
  return any_serving;
}

FleetEngine::FleetEngine(FleetTopology topology, FleetOptions options)
    : topology_(std::move(topology)), options_(options) {
  topology_.validate();
  if (options_.frontier_samples == 0) {
    throw std::invalid_argument("FleetEngine: frontier_samples must be >= 1");
  }
  engines_.reserve(topology_.size());
  for (const FleetShard& shard : topology_.shards) {
    engines_.push_back(
        std::make_unique<core::PlanEngine>(shard.model, options_.planner));
  }
  obs::gauge_set("fleet.shards", static_cast<double>(topology_.size()));
}

FleetEngine::~FleetEngine() = default;

const core::PlanEngine& FleetEngine::engine(size_t shard) const {
  if (shard >= engines_.size()) {
    throw std::invalid_argument(
        util::strf("FleetEngine: shard %zu out of range (fleet has %zu "
                   "shards)",
                   shard, engines_.size()));
  }
  return *engines_[shard];
}

const std::vector<FleetEngine::ShardFrontier>& FleetEngine::frontiers_for(
    const core::Scenario& s) const {
  const int key = scenario_key(s);
  std::scoped_lock lock(frontier_mu_);
  const auto it = frontiers_.find(key);
  if (it != frontiers_.end()) return it->second;

  // Shard frontiers are independent (each samples its own engine), so the
  // first fleet solve pays all shard preprocesses in parallel, not in a
  // serial walk — index-addressed slots keep the cache deterministic.
  std::vector<ShardFrontier> fronts(engines_.size());
  const size_t samples = options_.frontier_samples;
  default_pool().parallel_for(engines_.size(), [&](size_t shard) {
    const double cap = topology_.shards[shard].model->total_capacity();
    std::vector<FrontierPoint> points;
    points.reserve(samples + 1);
    // One request/result pair reused across the whole sweep: every sample
    // after the first refills the previous PlanResult's buffers in place
    // through the engine's warm scratch path instead of materializing a
    // fresh result per load level.
    core::PlanRequest req(s, 0.0);
    core::PlanResult r;
    for (size_t j = 0; j <= samples; ++j) {
      req.load = cap * static_cast<double>(j) / static_cast<double>(samples);
      engines_[shard]->solve_into(req, core::SolveScratch::local(), r);
      if (!r.plan) continue;
      points.push_back(FrontierPoint{req.load - r.shed_load,
                                     r.plan->allocation.total_power_w});
    }
    std::sort(points.begin(), points.end(),
              [](const FrontierPoint& x, const FrontierPoint& y) {
                if (x.load != y.load) return x.load < y.load;
                return x.power_w < y.power_w;
              });

    // Lower convex envelope: keep slopes strictly increasing so the
    // water-filling sees a well-defined marginal cost per segment.
    ShardFrontier front;
    for (const FrontierPoint& p : points) {
      if (!front.hull.empty() && p.load - front.hull.back().load < 1e-9) {
        continue;  // duplicate load level (thermal cap): keep the cheaper
      }
      while (front.hull.size() >= 2) {
        const FrontierPoint& a = front.hull[front.hull.size() - 2];
        const FrontierPoint& b = front.hull.back();
        // Pop b when slope(a,b) >= slope(b,p): b lies on or above a-p.
        if ((b.power_w - a.power_w) * (p.load - b.load) >=
            (p.power_w - b.power_w) * (b.load - a.load)) {
          front.hull.pop_back();
        } else {
          break;
        }
      }
      front.hull.push_back(p);
    }
    front.max_load = front.hull.empty() ? 0.0 : front.hull.back().load;
    fronts[shard] = std::move(front);

    frontier_builds_.fetch_add(1, std::memory_order_relaxed);
    obs::count("fleet.frontier_builds");
  });
  return frontiers_.emplace(key, std::move(fronts)).first->second;
}

std::vector<double> FleetEngine::split_load(
    const core::Scenario& scenario, double load,
    const std::vector<double>& shard_caps) const {
  if (shard_caps.size() != engines_.size()) {
    throw std::invalid_argument(
        util::strf("FleetEngine: split got %zu caps but the fleet has %zu "
                   "shards",
                   shard_caps.size(), engines_.size()));
  }
  const std::vector<ShardFrontier>& fronts = frontiers_for(scenario);

  struct Segment {
    double slope = 0.0;
    size_t shard = 0;
    size_t index = 0;
    double length = 0.0;
  };
  std::vector<Segment> segments;
  for (size_t shard = 0; shard < fronts.size(); ++shard) {
    const ShardFrontier& front = fronts[shard];
    const double cap = std::min(shard_caps[shard], front.max_load);
    for (size_t i = 0; i + 1 < front.hull.size(); ++i) {
      const FrontierPoint& p = front.hull[i];
      const FrontierPoint& q = front.hull[i + 1];
      const double hi = std::min(q.load, cap);
      if (hi <= p.load) break;  // everything further is beyond the cap
      segments.push_back(Segment{(q.power_w - p.power_w) / (q.load - p.load),
                                 shard, i, hi - p.load});
    }
  }
  // Cheapest marginal watt first; ties resolved by shard then segment
  // index so the split is a pure function of (topology, scenario, load).
  std::sort(segments.begin(), segments.end(),
            [](const Segment& x, const Segment& y) {
              if (x.slope != y.slope) return x.slope < y.slope;
              if (x.shard != y.shard) return x.shard < y.shard;
              return x.index < y.index;
            });

  std::vector<double> alloc(engines_.size(), 0.0);
  double remaining = load;
  for (const Segment& seg : segments) {
    if (remaining <= 0.0) break;
    if (seg.length >= remaining) {
      // Final partial segment takes the exact remainder, so the assigned
      // loads add up to the target without fp dust.
      alloc[seg.shard] += remaining;
      remaining = 0.0;
      break;
    }
    alloc[seg.shard] += seg.length;
    remaining -= seg.length;
  }
  return alloc;
}

FleetPlanResult FleetEngine::solve(const FleetPlanRequest& request,
                                   size_t workers) const {
  const size_t nshards = engines_.size();
  if (request.load < 0.0) {
    throw std::invalid_argument("FleetEngine: negative load");
  }
  if (request.load > total_capacity() + 1e-9) {
    throw std::invalid_argument(
        util::strf("FleetEngine: load %.3f exceeds fleet capacity %.3f",
                   request.load, total_capacity()));
  }
  std::vector<std::vector<size_t>> quarantined(nshards);
  for (const ShardMachine& q : request.quarantined) {
    if (q.shard >= nshards) {
      throw std::invalid_argument(
          util::strf("FleetEngine: quarantine targets shard %zu but the "
                     "fleet has %zu shards",
                     q.shard, nshards));
    }
    const size_t shard_n = topology_.shards[q.shard].model->size();
    if (q.machine >= shard_n) {
      throw std::invalid_argument(util::strf(
          "FleetEngine: quarantine targets machine %zu in shard %zu (%s) "
          "but that room has %zu machines",
          q.machine, q.shard, topology_.shards[q.shard].name.c_str(),
          shard_n));
    }
    quarantined[q.shard].push_back(q.machine);
  }
  std::vector<char> down(nshards, 0);
  for (const size_t s : request.down_shards) {
    if (s >= nshards) {
      throw std::invalid_argument(
          util::strf("FleetEngine: down_shards names shard %zu but the "
                     "fleet has %zu shards",
                     s, nshards));
    }
    down[s] = 1;
  }
  std::vector<char> faulted(nshards, 0);
  for (const size_t s : request.fault_shards) {
    if (s >= nshards) {
      throw std::invalid_argument(
          util::strf("FleetEngine: fault_shards names shard %zu but the "
                     "fleet has %zu shards",
                     s, nshards));
    }
    faulted[s] = 1;
  }

  const double t0 = now_us();
  obs::SpanContext* const spans = request.spans;
  const int fleet_span = spans != nullptr ? spans->begin("fleet.solve") : -1;

  // Surviving capacity per shard: the frontier is sampled on the healthy
  // room; quarantines tighten the cap here and are planned exactly by the
  // shard's own (incremental) restricted solve.
  std::vector<double> healthy_caps(nshards, 0.0);
  for (size_t s = 0; s < nshards; ++s) {
    const core::RoomModel& m = *topology_.shards[s].model;
    std::vector<char> mask(m.size(), 1);
    for (const size_t i : quarantined[s]) mask[i] = 0;
    for (size_t i = 0; i < m.size(); ++i) {
      if (mask[i] != 0) healthy_caps[s] += m.machines[i].capacity;
    }
  }
  // A down shard is a zero-capacity shard: the same water-filling that
  // splits the healthy fleet deterministically re-fills its share across
  // the survivors' remaining frontier segments.
  std::vector<double> caps = healthy_caps;
  for (size_t s = 0; s < nshards; ++s) {
    if (down[s] != 0) caps[s] = 0.0;
  }

  FleetPlanResult out;
  out.shard_status.assign(nshards, ShardStatus::kOk);
  for (size_t s = 0; s < nshards; ++s) {
    if (down[s] != 0) out.shard_status[s] = ShardStatus::kDown;
  }
  const int split_span = spans != nullptr ? spans->begin("fleet.split") : -1;
  out.shard_loads = split_load(request.scenario, request.load, caps);
  if (split_span >= 0) spans->end(split_span);
  out.shard_results.resize(nshards);

  util::ThreadPool* pool = nullptr;
  std::optional<util::ThreadPool> local;
  if (workers == 0) {
    pool = &default_pool();
  } else {
    local.emplace(workers);
    pool = &*local;
  }
  // Tracing across the fan-out uses pre-opened slots: the context's record
  // vector is fully sized here, each worker brackets only its own slot, and
  // the sub-requests carry spans = nullptr (the serial API is not safe
  // under parallel_for). Record order stays deterministic (slot order).
  std::vector<int> shard_spans;
  if (spans != nullptr) {
    shard_spans.resize(nshards);
    for (size_t s = 0; s < nshards; ++s) {
      shard_spans[s] = spans->open_slot("shard.engine.solve", fleet_span,
                                        static_cast<int64_t>(s));
    }
  }
  // Index-addressed slots + per-shard immutable engines: the schedule
  // cannot change a byte of the merged result. A shard whose solve throws
  // (a crash, or the fault_shards test seam) is marked down, its cap is
  // zeroed and the split recomputed, and the survivors re-solve — so a
  // crash mid-solve loses no load either. Each pass downs at least one
  // shard, bounding the loop at nshards passes; the thrown set is a pure
  // function of the request, keeping degraded plans bit-for-bit
  // reproducible.
  for (size_t pass = 0; pass < nshards + 1; ++pass) {
    pool->parallel_for(nshards, [&](size_t s) {
      if (spans != nullptr) spans->slot_begin(shard_spans[s]);
      if (out.shard_status[s] == ShardStatus::kDown) {
        if (spans != nullptr) spans->slot_end(shard_spans[s]);
        return;  // excluded: zero-duration span, untouched result slot
      }
      core::PlanRequest req(request.scenario, out.shard_loads[s],
                            quarantined[s]);
      req.shard = static_cast<int>(s);
      try {
        if (faulted[s] != 0) {
          throw std::runtime_error(
              util::strf("injected fault in shard %zu", s));
        }
        engines_[s]->solve_into(req, core::SolveScratch::local(),
                                out.shard_results[s]);
      } catch (const std::exception& e) {
        out.shard_results[s] = core::PlanResult{};
        out.shard_results[s].shard = static_cast<int>(s);
        out.shard_results[s].error = e.what();
      }
      if (spans != nullptr) spans->slot_end(shard_spans[s]);
    });
    bool crashed = false;
    for (size_t s = 0; s < nshards; ++s) {
      if (out.shard_status[s] == ShardStatus::kDown) continue;
      if (!out.shard_results[s].error.empty()) {
        out.shard_status[s] = ShardStatus::kDown;
        caps[s] = 0.0;
        crashed = true;
      }
    }
    if (!crashed) break;
    out.shard_loads = split_load(request.scenario, request.load, caps);
  }

  // Redistribution accounting: compare against the all-healthy split. A
  // survivor carrying more than its healthy share is degraded — still
  // serving, but paying for someone else's failure domain.
  if (out.shards_down() > 0) {
    const std::vector<double> healthy =
        split_load(request.scenario, request.load, healthy_caps);
    for (size_t s = 0; s < nshards; ++s) {
      if (out.shard_status[s] == ShardStatus::kDown) continue;
      const double extra = out.shard_loads[s] - healthy[s];
      if (extra > 1e-9) {
        out.redistributed_load += extra;
        out.shard_status[s] = ShardStatus::kDegraded;
      }
    }
  }

  double assigned = 0.0;
  for (const double l : out.shard_loads) assigned += l;
  out.unassigned_load = std::max(0.0, request.load - assigned);
  if (out.unassigned_load <= 1e-9) out.unassigned_load = 0.0;
  out.shed_load = out.unassigned_load;
  for (size_t s = 0; s < nshards; ++s) {
    const core::PlanResult& r = out.shard_results[s];
    if (out.shard_status[s] == ShardStatus::kDown) continue;
    if (r.plan) out.total_power_w += r.plan->allocation.total_power_w;
    out.shed_load += r.shed_load;
    if (r.shed_load > 0.0 && out.shard_status[s] == ShardStatus::kOk) {
      out.shard_status[s] = ShardStatus::kDegraded;
    }
  }
  if (fleet_span >= 0) spans->end(fleet_span);
  out.solve_us = now_us() - t0;

  solves_.fetch_add(1, std::memory_order_relaxed);
  obs::count("fleet.solves");
  obs::observe("fleet.solve_us", out.solve_us);
  if (out.shed_load > 0.0) obs::observe("fleet.shed_load", out.shed_load);
  obs::gauge_set("fleet.shards_down", static_cast<double>(out.shards_down()));
  obs::gauge_set("fleet.redistributed_load", out.redistributed_load);
  return out;
}

util::ThreadPool& FleetEngine::default_pool() const {
  std::scoped_lock lock(pool_mu_);
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>();
  return *pool_;
}

FleetCounters FleetEngine::counters() const {
  FleetCounters c;
  c.solves = solves_.load(std::memory_order_relaxed);
  c.frontier_builds = frontier_builds_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace coolopt::fleet
