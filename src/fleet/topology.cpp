#include "fleet/topology.h"

#include <stdexcept>

#include "util/strings.h"

namespace coolopt::fleet {

size_t FleetTopology::total_machines() const {
  size_t total = 0;
  for (const FleetShard& shard : shards) {
    if (shard.model) total += shard.model->size();
  }
  return total;
}

double FleetTopology::total_capacity() const {
  double total = 0.0;
  for (const FleetShard& shard : shards) {
    if (shard.model) total += shard.model->total_capacity();
  }
  return total;
}

void FleetTopology::validate() const {
  if (shards.empty()) {
    throw std::invalid_argument("FleetTopology: fleet has no shards");
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    const FleetShard& shard = shards[s];
    if (shard.name.empty()) {
      throw std::invalid_argument(
          util::strf("FleetTopology: shard %zu of %zu has no name", s,
                     shards.size()));
    }
    if (!shard.model) {
      throw std::invalid_argument(
          util::strf("FleetTopology: shard %zu (%s) has a null room model "
                     "but the fleet has %zu shards",
                     s, shard.name.c_str(), shards.size()));
    }
    if (shard.model->size() == 0) {
      throw std::invalid_argument(
          util::strf("FleetTopology: shard %zu (%s) has no machines", s,
                     shard.name.c_str()));
    }
    try {
      shard.model->validate();
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(
          util::strf("FleetTopology: shard %zu (%s): %s", s,
                     shard.name.c_str(), e.what()));
    }
  }
}

FleetTopology partition_room(const core::RoomModel& room, size_t shards) {
  if (shards == 0) {
    throw std::invalid_argument(
        "partition_room: cannot split a room into 0 shards");
  }
  if (shards > room.size()) {
    throw std::invalid_argument(
        util::strf("partition_room: cannot split a %zu-machine room into "
                   "%zu shards (at least one machine per shard)",
                   room.size(), shards));
  }
  FleetTopology topo;
  topo.shards.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    core::RoomModel piece;
    piece.cooler = room.cooler;
    piece.t_max = room.t_max;
    piece.t_ac_min = room.t_ac_min;
    piece.t_ac_max = room.t_ac_max;
    for (size_t i = s; i < room.size(); i += shards) {
      piece.machines.push_back(room.machines[i]);
    }
    topo.shards.push_back(FleetShard{util::strf("room-%zu", s),
                                     core::share_model(std::move(piece))});
  }
  return topo;
}

}  // namespace coolopt::fleet
