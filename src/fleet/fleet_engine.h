// FleetEngine — datacenter-scale planning as a two-level decomposition.
//
// Level 1 (this class): split a global load target across room shards via
// a marginal-cost water-filling over each shard's cached power-vs-load
// frontier, then cap every shard at its surviving capacity.
// Level 2 (core::PlanEngine, one per shard): the paper's single-room
// machinery — closed form, bounded LP, Algorithm 1/2 consolidation — runs
// unchanged inside each shard, including the incremental quarantine path.
//
// The frontier: for each shard and scenario the engine samples the shard's
// own optimal solve at evenly spaced loads up to the shard capacity and
// keeps the lower convex envelope of the (served load, predicted power)
// points. Water-filling then hands every marginal file/s to the shard
// whose next envelope segment has the cheapest slope (W per file/s), with
// deterministic tie-breaks (slope, then shard index, then segment index).
// Consolidation makes the true frontier non-convex, so the envelope is a
// relaxation: the split is near-optimal, while each shard's plan for its
// assigned load remains exactly the single-room optimum. Frontiers are
// sampled once per scenario and cached for the engine's lifetime.
//
// Determinism: frontiers, the split, and every shard solve are pure
// functions of (topology, scenario, load, quarantines); shard results land
// in index-addressed slots, so worker count and cache temperature cannot
// change a byte of the outcome — each shard's PlanResult is bit-for-bit
// what engine(s).solve() returns for the same request.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/engine.h"
#include "fleet/topology.h"

namespace coolopt::util {
class ThreadPool;
}  // namespace coolopt::util

namespace coolopt::fleet {

/// One machine inside one shard, for fleet-level quarantine lists.
struct ShardMachine {
  size_t shard = 0;
  size_t machine = 0;
};

/// Per-shard serving status after a fleet solve. A shard is `kDown` when
/// the caller declared it unavailable or its solve threw; `kDegraded` when
/// it survived but absorbed load redistributed off a down shard (or shed
/// some of its own); `kOk` when it served exactly its healthy share.
enum class ShardStatus { kOk, kDegraded, kDown };

const char* to_string(ShardStatus status);

/// A fleet-level planning query: one scenario and one global load target.
struct FleetPlanRequest {
  core::Scenario scenario = core::Scenario::by_number(8);
  double load = 0.0;  ///< global target, files/s
  /// Machines the planner must leave OFF, addressed as (shard, machine).
  /// Out-of-range indices throw, naming the offending shard.
  std::vector<ShardMachine> quarantined;
  /// Shards declared unavailable before the solve (failed health checks,
  /// maintenance). They are excluded from the split, never solved, and
  /// their healthy share of the load is re-water-filled across the
  /// survivors against the cached frontiers. Out-of-range indices throw.
  std::vector<size_t> down_shards;
  /// Test seam for the crashed-shard path: these shards' solves throw
  /// deterministically, which the engine treats exactly like a real crash
  /// (mark down, record the error, redistribute the load).
  std::vector<size_t> fault_shards;
  /// Optional request tracing: when non-null, solve() records a
  /// "fleet.solve" span with a "fleet.split" child and one
  /// "shard.engine.solve" slot per shard (detail = shard index). Slots are
  /// pre-opened before the parallel fan-out, so shard workers never mutate
  /// the context structure concurrently. Never owned; nullptr = untraced.
  obs::SpanContext* spans = nullptr;
};

/// Deterministic merge of the per-shard results.
struct FleetPlanResult {
  /// Load assigned to each shard by the water-filling split (index ==
  /// shard). Sums to the request load minus `unassigned_load`.
  std::vector<double> shard_loads;
  /// Result of each shard's own PlanEngine::solve, shard attribution set.
  std::vector<core::PlanResult> shard_results;
  double total_power_w = 0.0;  ///< sum over shards with a plan
  /// Load the splitter could not place anywhere (every shard at its
  /// thermal/capacity cap) — shed before any shard even solved.
  double unassigned_load = 0.0;
  /// Total files/s shed: unassigned_load plus the shards' own shed_load.
  double shed_load = 0.0;
  double solve_us = 0.0;
  /// Per-shard status (index == shard). Down shards keep the solve error
  /// (when they crashed rather than being declared down) in
  /// `shard_results[s].error`.
  std::vector<ShardStatus> shard_status;
  /// Load moved onto survivors relative to the all-shards-healthy split —
  /// what the failure domain cost the rest of the fleet.
  double redistributed_load = 0.0;

  size_t shards_down() const;

  /// True only when every *serving* shard produced a plan and nothing was
  /// shed: down shards whose load the survivors fully absorbed do not make
  /// the fleet plan infeasible — that is the point of the failure domain.
  bool feasible() const;
};

struct FleetOptions {
  core::PlannerOptions planner;
  /// Frontier resolution: samples per shard is frontier_samples + 1
  /// (loads j/frontier_samples * capacity, j = 0..frontier_samples).
  size_t frontier_samples = 16;
};

/// Monotonic counters, mirrored into obs as the `fleet.*` family.
struct FleetCounters {
  uint64_t solves = 0;
  uint64_t frontier_builds = 0;  ///< per (scenario, shard) frontier samples
};

class FleetEngine {
 public:
  /// Validates the topology (errors name the offending shard) and builds
  /// one PlanEngine per shard. Frontiers are sampled lazily per scenario.
  explicit FleetEngine(FleetTopology topology, FleetOptions options = {});
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  size_t shard_count() const { return topology_.size(); }
  const FleetTopology& topology() const { return topology_; }
  double total_capacity() const { return topology_.total_capacity(); }
  /// The shard's own engine; throws std::invalid_argument naming the shard
  /// index and the fleet size when out of range.
  const core::PlanEngine& engine(size_t shard) const;

  /// Splits, solves every shard in parallel (`workers` == 0 uses an
  /// engine-owned pool), and merges deterministically. Throws
  /// std::invalid_argument on negative load, load above fleet capacity, or
  /// an out-of-range quarantine target (the error names the shard).
  FleetPlanResult solve(const FleetPlanRequest& request, size_t workers = 0) const;

  /// The water-filling split alone (introspection for tests/benches):
  /// per-shard loads for a global target under per-shard caps.
  std::vector<double> split_load(const core::Scenario& scenario, double load,
                                 const std::vector<double>& shard_caps) const;

  FleetCounters counters() const;

 private:
  struct FrontierPoint {
    double load = 0.0;     // served load at this sample (shed removed)
    double power_w = 0.0;  // predicted total power at that load
  };
  struct ShardFrontier {
    std::vector<FrontierPoint> hull;  // lower convex envelope, load ascending
    double max_load = 0.0;            // largest load the shard ever served
  };

  const std::vector<ShardFrontier>& frontiers_for(const core::Scenario& s) const;
  util::ThreadPool& default_pool() const;

  FleetTopology topology_;
  FleetOptions options_;
  std::vector<std::unique_ptr<core::PlanEngine>> engines_;

  mutable std::mutex frontier_mu_;
  mutable std::map<int, std::vector<ShardFrontier>> frontiers_;  // by scenario

  mutable std::mutex pool_mu_;
  mutable std::unique_ptr<util::ThreadPool> pool_;

  mutable std::atomic<uint64_t> solves_{0};
  mutable std::atomic<uint64_t> frontier_builds_{0};
};

}  // namespace coolopt::fleet
