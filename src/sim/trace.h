// Time-series recording for profiling runs and figure reproduction.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace coolopt::sim {

/// Fixed-schema time-series buffer: one row per sample, first column is
/// always "time_s".
class TraceRecorder {
 public:
  explicit TraceRecorder(std::vector<std::string> channels);

  /// Appends a sample; `values` must match the channel count.
  void record(double time_s, std::span<const double> values);

  size_t sample_count() const { return times_.size(); }
  const std::vector<std::string>& channels() const { return channels_; }
  const std::vector<double>& times() const { return times_; }

  /// Column by name (throws std::out_of_range on unknown channel).
  std::vector<double> column(const std::string& channel) const;

  /// Value at (sample, channel index).
  double value(size_t sample, size_t channel) const;

  /// Writes "time_s,<channels...>" CSV to `path`.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> channels_;
  std::vector<double> times_;
  std::vector<double> data_;  // row-major, sample_count x channels
};

}  // namespace coolopt::sim
