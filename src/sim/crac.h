// Simulated CRAC unit (Section II-B of the paper).
//
// Mirrors the Liebert Challenger 3000 behaviour the paper describes: a
// constant-speed circulation fan, and an internal control loop that
// modulates chilled-water cooling so the *return/exhaust* air temperature
// tracks the operator set point T_SP. The supply temperature T_ac is an
// emergent quantity: T_ac = T_return - Q_cool / (c_air * f_ac).
//
// Electrical draw is Q_cool / COP(T_ac) + fan. COP rises with supply
// temperature; this is the physical reason raising T_ac saves energy and is
// what the paper's linear P_ac = c*f_ac*(T_SP - T_ac) model linearizes.
#pragma once

#include "sim/config.h"

namespace coolopt::sim {

/// Runtime degradation state of the CRAC unit — the fault model the
/// resilience layer injects (see sim/fault_scheduler.h). All fields at
/// their defaults describe a healthy unit.
struct CracDegradation {
  /// Multiplier on the unit's COP (chilled-water efficiency): a fouled coil
  /// or low refrigerant charge extracts the same heat at higher electrical
  /// cost. Must be in (0, 1].
  double efficiency = 1.0;
  /// Multiplier on the circulation flow f_ac: a failing blower or clogged
  /// filter moves less air, which both starves the servers of supply air
  /// and lowers the achievable heat-extraction rate. Must be in (0, 1].
  double flow_factor = 1.0;
  /// Stuck set-point actuator: the unit keeps controlling on whatever
  /// T_SP it last accepted and ignores new set_setpoint_c commands.
  bool setpoint_stuck = false;

  bool healthy() const {
    return efficiency >= 1.0 && flow_factor >= 1.0 && !setpoint_stuck;
  }
};

class CracSim {
 public:
  explicit CracSim(const CracConfig& cfg);

  // --- operator knob ---
  /// Commands a new set point. Ignored while the set-point actuator is
  /// stuck (CracDegradation::setpoint_stuck) — exactly the failure an
  /// operator sees when the unit's controller board wedges.
  void set_setpoint_c(double t_sp_c);
  double setpoint_c() const { return setpoint_c_; }

  // --- fault injection ---
  /// Applies (or, with a default-constructed argument, clears) runtime
  /// degradation. Throws std::invalid_argument on factors outside (0, 1].
  /// The caller (MachineRoom::set_crac_degradation) refreshes the room's
  /// airflow network afterwards, since flow_factor changes the air paths.
  void set_degradation(const CracDegradation& d);
  const CracDegradation& degradation() const { return degradation_; }

  /// Effective circulation flow after degradation, m^3/s.
  double flow_m3s() const { return cfg_.flow_m3s * degradation_.flow_factor; }

  /// COP at a given supply temperature (ground truth).
  double cop_at(double supply_temp_c) const;

  /// Advances the internal PI loop by dt given the measured return-air
  /// temperature; updates the commanded cooling rate and supply temperature.
  void step(double dt, double return_temp_c);

  /// Directly fixes the steady operating point (used by the fast
  /// steady-state solver): given the return temperature and required heat
  /// extraction, applies saturation limits and sets state accordingly.
  /// Returns the achieved cooling rate (W) after limits.
  double set_steady_operating_point(double return_temp_c, double required_cooling_w);

  // --- observables ---
  double supply_temp_c() const { return supply_temp_c_; }
  double cooling_rate_w() const { return cooling_w_; }
  /// Instantaneous electrical draw, W (compressor/chilled water + fan).
  double electric_power_w() const;
  bool saturated() const { return saturated_; }

  const CracConfig& config() const { return cfg_; }

  /// Resets the PI integrator (e.g. after a set-point change in tests).
  void reset_controller();

 private:
  void apply_cooling(double return_temp_c, double cooling_cmd_w);

  CracConfig cfg_;
  CracDegradation degradation_;
  double setpoint_c_;
  double cooling_w_ = 0.0;
  double supply_temp_c_;
  double integral_w_ = 0.0;
  bool saturated_ = false;
};

}  // namespace coolopt::sim
