// The simulated machine room: one rack of servers, a single CRAC, and the
// room air volume, coupled through a lumped thermal network.
//
// Air-path model (displacement formulation, matching Eqs. 1-2):
//   * the CRAC supplies cool air at T_ac (emergent, see CracSim) at f_ac;
//   * server i inhales F_i of which a slot-dependent fraction r_i is warm
//     recirculated room air and (1-r_i) is the cold supply stream — this is
//     what makes T_in_i = alpha_i*T_ac + gamma_i (Eq. 7) with *different*
//     coefficients per rack position;
//   * server exhaust and unconsumed supply mix into the room ambient, from
//     which the CRAC draws its return air (the paper's unit controls on
//     return temperature);
//   * walls leak a little heat to the building corridor.
//
// Two time-evolution modes:
//   * step()/run(): transient integration (RK4) with the CRAC's PI loop —
//     used for profiling traces (Figs. 2-3) and the dynamics tests;
//   * settle(): direct steady-state solve including the CRAC control law
//     (the network is linear, and return temperature is affine in supply
//     temperature) — used by the evaluation benches, which only need the
//     paper's steady-state operating points.
#pragma once

#include <cstddef>
#include <vector>

#include "physics/thermal_network.h"
#include "sim/config.h"
#include "sim/crac.h"
#include "sim/sensors.h"
#include "sim/server.h"

namespace coolopt::sim {

class MachineRoom {
 public:
  explicit MachineRoom(const RoomConfig& cfg);

  size_t size() const { return servers_.size(); }
  ServerSim& server(size_t i) { return servers_.at(i); }
  const ServerSim& server(size_t i) const { return servers_.at(i); }
  CracSim& crac() { return crac_; }
  const CracSim& crac() const { return crac_; }
  const RoomConfig& config() const { return cfg_; }

  // --- actuation ---
  void set_setpoint_c(double t_sp_c) { crac_.set_setpoint_c(t_sp_c); }
  void set_power_state(size_t i, bool on);
  /// Injects/repairs a fan failure on server i (updates the airflow paths).
  /// Throws std::invalid_argument when i is not a valid server index, so a
  /// mistyped fault target is rejected before it can mutate the room.
  void set_fan_failed(size_t i, bool failed);
  /// Starts/ends a meter-glitch episode on server i's power meter
  /// (prob == 0 ends it). Bounds-checked like set_fan_failed.
  void set_power_meter_spike(size_t i, double spike_prob, double spike_w);
  /// Starts/ends a stuck-register episode on server i's temperature sensor.
  void set_temp_sensor_stuck(size_t i, double stuck_prob);
  /// Applies (default-constructed argument: clears) CRAC degradation and
  /// refreshes the airflow network, since a degraded blower moves less air.
  void set_crac_degradation(const CracDegradation& d);
  void set_utilization(size_t i, double u);
  void set_load_files_s(size_t i, double files_s);
  /// Convenience: same utilization on every ON server.
  void set_uniform_utilization(double u);
  /// Turns every server on/off.
  void set_all_power(bool on);

  // --- time evolution ---
  /// One transient step of `dt` seconds (also advances the CRAC PI loop and
  /// accumulates energy counters).
  void step(double dt);
  void run(double seconds, double dt = 0.5);
  /// Jumps to the controlled steady state (does not advance clocks or
  /// accumulate energy).
  void settle();
  double time_s() const { return time_s_; }

  // --- ground-truth observables ---
  double true_cpu_temp_c(size_t i) const;
  double true_box_temp_c(size_t i) const;
  /// Mixed inlet temperature seen by server i (Eq. 7's T_in).
  double true_inlet_temp_c(size_t i) const;
  double ambient_temp_c() const;
  double supply_temp_c() const { return crac_.supply_temp_c(); }
  double return_temp_c() const { return ambient_temp_c(); }

  double server_power_w(size_t i) const;
  /// Sum of server electrical draw ("computing energy" side).
  double it_power_w() const;
  double crac_power_w() const { return crac_.electric_power_w(); }
  double total_power_w() const { return it_power_w() + crac_power_w(); }

  /// Heat generated minus heat removed (CRAC + walls) right now, W.
  /// ~0 at steady state; the conservation tests pin this down.
  double heat_balance_residual_w() const;

  // --- instruments (stateful: noise streams advance per read) ---
  double read_cpu_temp_c(size_t i);
  double read_server_power_w(size_t i);

  // --- integrated energy (transient mode only) ---
  double it_energy_j() const { return it_energy_j_; }
  double cooling_energy_j() const { return cooling_energy_j_; }
  double total_energy_j() const { return it_energy_j_ + cooling_energy_j_; }
  void reset_energy();

  /// Total throughput currently being served, files/s (ON servers).
  double throughput_files_s() const;

 private:
  void refresh_flows();
  void refresh_heat_inputs();
  /// Appends a StepSample (T_ac, P_ac, aggregate/per-server P_i, peak CPU)
  /// to the attached obs::RunTrace, if any. Called by step() and settle().
  void record_trace_sample(bool steady) const;
  /// Steady-state return temperature as a function of supply temperature is
  /// affine: fills `a` and `b` with T_return = a + b * T_supply.
  void return_affine(double& a, double& b);

  RoomConfig cfg_;
  std::vector<ServerSim> servers_;
  CracSim crac_;

  physics::ThermalNetwork net_;
  physics::NodeId supply_node_;
  physics::NodeId outside_node_;
  physics::NodeId ambient_node_;
  std::vector<physics::NodeId> cpu_nodes_;
  std::vector<physics::NodeId> box_nodes_;
  std::vector<size_t> supply_to_box_;
  std::vector<size_t> ambient_to_box_;
  std::vector<size_t> box_to_ambient_;
  size_t supply_to_ambient_ = 0;
  /// Effective fraction of each server's intake drawn from the supply
  /// stream (== 1 - recirc normally; lower when the fleet over-subscribes
  /// the CRAC flow). Kept in sync by refresh_flows().
  std::vector<double> supply_fraction_;

  std::vector<PowerMeter> power_meters_;
  std::vector<TempSensor> temp_sensors_;

  double time_s_ = 0.0;
  double it_energy_j_ = 0.0;
  double cooling_energy_j_ = 0.0;
};

}  // namespace coolopt::sim
