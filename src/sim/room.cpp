#include "sim/room.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "util/log.h"
#include "util/strings.h"

namespace coolopt::sim {

MachineRoom::MachineRoom(const RoomConfig& cfg) : cfg_(cfg), crac_(cfg.crac) {
  util::Rng rng(cfg_.seed);

  // --- build servers with slot- and rack-dependent airflow/recirculation ---
  const size_t n = cfg_.total_servers();
  if (n == 0) {
    throw std::invalid_argument("MachineRoom: need at least one server");
  }
  if (cfg_.num_racks == 0) {
    throw std::invalid_argument("MachineRoom: need at least one rack");
  }
  // Per-server hardware class: homogeneous by default, block-wise when a
  // heterogeneous fleet is configured.
  std::vector<const ServerConfig*> class_of(n, &cfg_.server);
  if (!cfg_.fleet.empty()) {
    size_t idx = 0;
    for (const RoomConfig::FleetBlock& block : cfg_.fleet) {
      for (size_t c = 0; c < block.count && idx < n; ++c) {
        class_of[idx++] = &block.server;
      }
    }
  }
  const size_t per_rack = (n + cfg_.num_racks - 1) / cfg_.num_racks;
  for (size_t i = 0; i < n; ++i) {
    util::Rng unit_rng = rng.fork(util::strf("server-%zu", i));
    servers_.emplace_back(i, *class_of[i], cfg_.unit_jitter,
                          cfg_.airflow_jitter * cfg_.diversity_scale,
                          cfg_.exchange_jitter * cfg_.diversity_scale, unit_rng);

    const size_t rack = i / per_rack;
    const size_t slot = i % per_rack;
    const double frac =
        per_rack > 1 ? static_cast<double>(slot) / static_cast<double>(per_rack - 1)
                     : 0.0;
    const double r_nominal =
        cfg_.recirc_bottom + (cfg_.recirc_top - cfg_.recirc_bottom) * frac +
        cfg_.rack_recirc_penalty * static_cast<double>(rack);
    const double r_mean = 0.5 * (cfg_.recirc_bottom + cfg_.recirc_top);
    const double r = r_mean + cfg_.diversity_scale * (r_nominal - r_mean);
    servers_.back().set_recirc_fraction(std::clamp(r, 0.0, 0.95));

    const double derate_nominal = 1.0 + (cfg_.flow_derate_top - 1.0) * frac;
    const double derate_mean = 0.5 * (1.0 + cfg_.flow_derate_top);
    const double derate =
        derate_mean + cfg_.diversity_scale * (derate_nominal - derate_mean);
    servers_.back().scale_fan_flow(derate);
  }

  // --- thermal network ---
  supply_node_ = net_.add_boundary("supply", crac_.supply_temp_c());
  outside_node_ = net_.add_boundary("outside", cfg_.outside_temp_c);
  ambient_node_ =
      net_.add_node("ambient", cfg_.ambient_heat_capacity, cfg_.outside_temp_c);
  net_.add_conduction(ambient_node_, outside_node_, cfg_.wall_conductance_w_k);

  for (size_t i = 0; i < n; ++i) {
    const ServerTruth& t = servers_[i].truth();
    cpu_nodes_.push_back(net_.add_node(util::strf("cpu-%zu", i),
                                       t.cpu_heat_capacity, cfg_.outside_temp_c));
    box_nodes_.push_back(net_.add_node(util::strf("box-%zu", i),
                                       t.box_heat_capacity, cfg_.outside_temp_c));
    net_.add_conduction(cpu_nodes_[i], box_nodes_[i], t.cpu_box_exchange);
    supply_to_box_.push_back(
        net_.add_advection(supply_node_, box_nodes_[i], 0.0, cfg_.crac.c_air));
    ambient_to_box_.push_back(
        net_.add_advection(ambient_node_, box_nodes_[i], 0.0, cfg_.crac.c_air));
    box_to_ambient_.push_back(
        net_.add_advection(box_nodes_[i], ambient_node_, 0.0, cfg_.crac.c_air));
  }
  supply_to_ambient_ =
      net_.add_advection(supply_node_, ambient_node_, 0.0, cfg_.crac.c_air);

  // --- instruments ---
  for (size_t i = 0; i < n; ++i) {
    power_meters_.emplace_back(rng.fork(util::strf("meter-%zu", i)),
                               cfg_.power_meter_noise_w, cfg_.power_meter_quantum_w,
                               cfg_.power_meter_spike_prob,
                               cfg_.power_meter_spike_w);
    temp_sensors_.emplace_back(rng.fork(util::strf("temp-%zu", i)),
                               cfg_.temp_sensor_noise_c, cfg_.temp_sensor_quantum_c,
                               cfg_.temp_sensor_stuck_prob);
  }

  refresh_flows();
  refresh_heat_inputs();
  settle();
}

void MachineRoom::set_power_state(size_t i, bool on) {
  servers_.at(i).set_on(on);
  refresh_flows();
  refresh_heat_inputs();
}

void MachineRoom::set_fan_failed(size_t i, bool failed) {
  if (i >= servers_.size()) {
    throw std::invalid_argument(
        util::strf("MachineRoom::set_fan_failed: server index %zu out of range "
                   "(room has %zu servers)",
                   i, servers_.size()));
  }
  servers_[i].set_fan_failed(failed);
  refresh_flows();
}

void MachineRoom::set_power_meter_spike(size_t i, double spike_prob,
                                        double spike_w) {
  if (i >= power_meters_.size()) {
    throw std::invalid_argument(util::strf(
        "MachineRoom::set_power_meter_spike: server index %zu out of range "
        "(room has %zu servers)",
        i, power_meters_.size()));
  }
  power_meters_[i].set_spike(spike_prob, spike_w);
}

void MachineRoom::set_temp_sensor_stuck(size_t i, double stuck_prob) {
  if (i >= temp_sensors_.size()) {
    throw std::invalid_argument(util::strf(
        "MachineRoom::set_temp_sensor_stuck: server index %zu out of range "
        "(room has %zu servers)",
        i, temp_sensors_.size()));
  }
  temp_sensors_[i].set_stuck_prob(stuck_prob);
}

void MachineRoom::set_crac_degradation(const CracDegradation& d) {
  crac_.set_degradation(d);
  refresh_flows();
}

void MachineRoom::set_utilization(size_t i, double u) {
  servers_.at(i).set_utilization(u);
  refresh_heat_inputs();
}

void MachineRoom::set_load_files_s(size_t i, double files_s) {
  servers_.at(i).set_load_files_s(files_s);
  refresh_heat_inputs();
}

void MachineRoom::set_uniform_utilization(double u) {
  for (ServerSim& s : servers_) {
    if (s.is_on()) s.set_utilization(u);
  }
  refresh_heat_inputs();
}

void MachineRoom::set_all_power(bool on) {
  for (ServerSim& s : servers_) s.set_on(on);
  refresh_flows();
  refresh_heat_inputs();
}

void MachineRoom::refresh_flows() {
  // First pass: how much of the cold supply stream the fleet wants.
  double supply_wanted = 0.0;
  for (const ServerSim& s : servers_) {
    supply_wanted += (1.0 - s.truth().recirc_fraction) * s.airflow_m3s();
  }
  // If the fleet wants more supply air than the CRAC moves, the shortfall
  // is physically drawn from the room instead (higher effective
  // recirculation for everyone). Scaling the supply share keeps the air
  // mass balance exact, which the energy-conservation invariant depends on.
  // Degradation can shrink the CRAC's delivered flow below its nameplate,
  // so the balance must use the effective value.
  const double crac_flow = crac_.flow_m3s();
  double supply_scale = 1.0;
  if (supply_wanted > crac_flow) {
    supply_scale = crac_flow / supply_wanted;
    util::log_debug(
        "MachineRoom: server intake (%.3f m3/s) exceeds CRAC supply (%.3f "
        "m3/s); %.0f%% of the shortfall recirculates from the room",
        supply_wanted, crac_flow, 100.0 * (1.0 - supply_scale));
  }

  double supply_consumed = 0.0;
  supply_fraction_.assign(servers_.size(), 0.0);
  for (size_t i = 0; i < servers_.size(); ++i) {
    const double flow = servers_[i].airflow_m3s();
    const double r = servers_[i].truth().recirc_fraction;
    const double from_supply = (1.0 - r) * flow * supply_scale;
    supply_fraction_[i] = flow > 0.0 ? from_supply / flow : 0.0;
    net_.set_advection_flow(supply_to_box_[i], from_supply);
    net_.set_advection_flow(ambient_to_box_[i], flow - from_supply);
    net_.set_advection_flow(box_to_ambient_[i], flow);
    supply_consumed += from_supply;
  }
  net_.set_advection_flow(supply_to_ambient_,
                          std::max(0.0, crac_flow - supply_consumed));
}

void MachineRoom::refresh_heat_inputs() {
  for (size_t i = 0; i < servers_.size(); ++i) {
    const double p = servers_[i].power_draw_w();
    const double f = servers_[i].truth().cpu_heat_fraction;
    net_.set_heat_input(cpu_nodes_[i], f * p);
    net_.set_heat_input(box_nodes_[i], (1.0 - f) * p);
  }
}

void MachineRoom::step(double dt) {
  if (dt <= 0.0) throw std::invalid_argument("MachineRoom::step: dt must be > 0");
  crac_.step(dt, return_temp_c());
  net_.set_boundary_temp(supply_node_, crac_.supply_temp_c());
  net_.step(dt);
  time_s_ += dt;
  it_energy_j_ += it_power_w() * dt;
  cooling_energy_j_ += crac_power_w() * dt;
  obs::count("sim.steps");
  record_trace_sample(/*steady=*/false);
}

void MachineRoom::run(double seconds, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("MachineRoom::run: dt must be > 0");
  double t = 0.0;
  while (t < seconds) {
    const double h = std::min(dt, seconds - t);
    step(h);
    t += h;
  }
}

void MachineRoom::return_affine(double& a, double& b) {
  const double saved = net_.temp(supply_node_);
  const double s1 = 10.0;
  const double s2 = 20.0;
  net_.set_boundary_temp(supply_node_, s1);
  const double r1 = net_.steady_state()[ambient_node_.index];
  net_.set_boundary_temp(supply_node_, s2);
  const double r2 = net_.steady_state()[ambient_node_.index];
  net_.set_boundary_temp(supply_node_, saved);
  b = (r2 - r1) / (s2 - s1);
  a = r1 - b * s1;
}

void MachineRoom::settle() {
  double a = 0.0;
  double b = 0.0;
  return_affine(a, b);
  // b is the steady-state gain dT_return/dT_supply; with nonzero wall
  // conductance it lies strictly inside (0, 1).
  const double conductance = cfg_.crac.c_air * crac_.flow_m3s();
  const double t_sp = crac_.setpoint_c();

  // Unconstrained solution: supply temp that makes T_return == T_SP.
  double supply = (t_sp - a) / b;
  double cooling = conductance * (t_sp - supply);

  if (cooling < 0.0) {
    // Room is naturally colder than the set point: coil off, supply air is
    // just recirculated return air. T_return = a + b*T_return.
    const double t_return = a / (1.0 - b);
    supply = t_return;
    cooling = 0.0;
  } else if (supply < cfg_.crac.min_supply_c) {
    // Coil temperature limit: pin the supply and let the return float high.
    supply = cfg_.crac.min_supply_c;
    cooling = conductance * ((a + b * supply) - supply);
  }
  if (cooling > cfg_.crac.max_cooling_w) {
    // Capacity limit: T_s = T_r - q_max/cf and T_r = a + b*T_s.
    const double t_return =
        (a - b * cfg_.crac.max_cooling_w / conductance) / (1.0 - b);
    supply = t_return - cfg_.crac.max_cooling_w / conductance;
    cooling = cfg_.crac.max_cooling_w;
  }

  net_.set_boundary_temp(supply_node_, supply);
  net_.settle();
  crac_.set_steady_operating_point(return_temp_c(), cooling);
  obs::count("sim.settles");
  record_trace_sample(/*steady=*/true);
}

void MachineRoom::record_trace_sample(bool steady) const {
  obs::RunTrace* tr = obs::trace();
  if (tr == nullptr) return;
  obs::StepSample s;
  s.time_s = time_s_;
  s.steady = steady;
  s.t_ac_c = supply_temp_c();
  s.t_return_c = return_temp_c();
  s.p_ac_w = crac_power_w();
  s.p_it_w = it_power_w();
  s.p_total_w = s.p_ac_w + s.p_it_w;
  s.peak_cpu_c = ambient_temp_c();
  const bool per_server = tr->options().per_server;
  if (per_server) {
    s.server_load_files_s.reserve(servers_.size());
    s.server_power_w.reserve(servers_.size());
    s.server_cpu_c.reserve(servers_.size());
  }
  for (size_t i = 0; i < servers_.size(); ++i) {
    const double cpu_c = true_cpu_temp_c(i);
    if (servers_[i].is_on()) s.peak_cpu_c = std::max(s.peak_cpu_c, cpu_c);
    if (per_server) {
      s.server_load_files_s.push_back(servers_[i].is_on()
                                          ? servers_[i].load_files_s()
                                          : 0.0);
      s.server_power_w.push_back(server_power_w(i));
      s.server_cpu_c.push_back(cpu_c);
    }
  }
  tr->record_step(std::move(s));
}

double MachineRoom::true_cpu_temp_c(size_t i) const {
  return net_.temp(cpu_nodes_.at(i));
}

double MachineRoom::true_box_temp_c(size_t i) const {
  return net_.temp(box_nodes_.at(i));
}

double MachineRoom::true_inlet_temp_c(size_t i) const {
  const double f = supply_fraction_.at(i);
  return f * net_.temp(supply_node_) + (1.0 - f) * ambient_temp_c();
}

double MachineRoom::ambient_temp_c() const { return net_.temp(ambient_node_); }

double MachineRoom::server_power_w(size_t i) const {
  return servers_.at(i).power_draw_w();
}

double MachineRoom::it_power_w() const {
  double total = 0.0;
  for (const ServerSim& s : servers_) total += s.power_draw_w();
  return total;
}

double MachineRoom::heat_balance_residual_w() const {
  const double produced = it_power_w();
  const double wall_loss =
      cfg_.wall_conductance_w_k * (ambient_temp_c() - cfg_.outside_temp_c);
  return produced - crac_.cooling_rate_w() - wall_loss;
}

double MachineRoom::read_cpu_temp_c(size_t i) {
  return temp_sensors_.at(i).read_celsius(true_cpu_temp_c(i));
}

double MachineRoom::read_server_power_w(size_t i) {
  return power_meters_.at(i).read_watts(server_power_w(i));
}

void MachineRoom::reset_energy() {
  it_energy_j_ = 0.0;
  cooling_energy_j_ = 0.0;
}

double MachineRoom::throughput_files_s() const {
  double total = 0.0;
  for (const ServerSim& s : servers_) {
    if (s.is_on()) total += s.load_files_s();
  }
  return total;
}

}  // namespace coolopt::sim
