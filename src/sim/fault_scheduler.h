// Timed fault injection against a live MachineRoom.
//
// A FaultScenario is a list of (time, fault) events — fan failures, server
// crashes, sensor glitch episodes, CRAC degradation — that a FaultScheduler
// replays against a room as simulated time advances. The static
// sim::FaultPlan (faults present for the whole measurement) is the t=0
// special case, see FaultScenario::from_plan.
//
// Determinism: the scheduler itself is a pure function of the scenario and
// the times it is advanced to. The only randomness in a faulted run lives in
// the room's per-sensor RNG streams, which are forked from RoomConfig::seed,
// so a campaign replayed from the same seed is bit-for-bit reproducible.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/crac.h"

namespace coolopt::sim {

class MachineRoom;

/// What breaks (or recovers, when FaultEvent::clear is set).
enum class FaultKind {
  kFanFailure,       ///< server fan stops; passive draft only
  kServerOffline,    ///< server crashes / is powered off
  kPowerMeterSpike,  ///< plug-meter glitch episode (value = prob, value2 = W)
  kTempSensorStuck,  ///< stuck temperature register episode (value = prob)
  kCracDegradation,  ///< reduced CRAC efficiency/airflow (value = eta,
                     ///< value2 = flow factor)
  kCracSetpointStuck ///< CRAC set-point actuator wedges
};

const char* to_string(FaultKind kind);

/// One scheduled fault transition.
struct FaultEvent {
  /// Sentinel target: apply the (sensor) fault to every server in the room.
  static constexpr size_t kAllServers = static_cast<size_t>(-1);

  double time_s = 0.0;   ///< simulated time at which the event fires
  FaultKind kind = FaultKind::kFanFailure;
  /// Server index for per-server kinds (ignored by the CRAC kinds);
  /// kAllServers fans a sensor fault out to the whole fleet.
  size_t target = 0;
  /// true == the fault heals at time_s instead of starting.
  bool clear = false;
  double value = 0.0;    ///< kind-specific, see FaultKind comments
  double value2 = 0.0;
};

/// A named, ordered fault storyline.
struct FaultScenario {
  std::string name;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Lifts a static FaultPlan into the scheduled world: every fault fires
  /// at t=0 and never clears.
  static FaultScenario from_plan(const FaultPlan& plan);

  /// Looks up a scenario from the built-in library (see names());
  /// throws std::invalid_argument for unknown names.
  static FaultScenario named(const std::string& name);
  /// Names accepted by named(), e.g. for --scenario flag help text.
  static std::vector<std::string> names();
};

/// Replays a FaultScenario against a live room. Construct once per run,
/// then call advance_to(t) as simulated time passes; each event fires
/// exactly once, in time order.
class FaultScheduler {
 public:
  /// Validates every event against the room (target indices, degradation
  /// factor ranges) up front, throwing std::invalid_argument with the
  /// offending event named — a bad scenario never half-applies.
  FaultScheduler(MachineRoom& room, FaultScenario scenario);

  /// Applies all not-yet-applied events with time_s <= time_s.
  /// Returns how many events fired.
  size_t advance_to(double time_s);

  size_t applied_count() const { return next_; }
  size_t pending_count() const { return scenario_.events.size() - next_; }
  const FaultScenario& scenario() const { return scenario_; }

 private:
  void apply(const FaultEvent& ev);

  MachineRoom& room_;
  FaultScenario scenario_;   ///< events stable-sorted by time
  size_t next_ = 0;
  /// Merged CRAC state so degradation and stuck-set-point events compose
  /// instead of overwriting each other.
  CracDegradation crac_state_;
};

}  // namespace coolopt::sim
