#include "sim/crac.h"

#include <algorithm>
#include <stdexcept>

namespace coolopt::sim {

CracSim::CracSim(const CracConfig& cfg)
    : cfg_(cfg),
      setpoint_c_(cfg.default_setpoint_c),
      supply_temp_c_(cfg.default_setpoint_c) {
  if (cfg_.flow_m3s <= 0.0 || cfg_.c_air <= 0.0) {
    throw std::invalid_argument("CracSim: flow and c_air must be > 0");
  }
}

void CracSim::set_setpoint_c(double t_sp_c) {
  if (degradation_.setpoint_stuck) return;  // actuator ignores the command
  setpoint_c_ = t_sp_c;
}

void CracSim::set_degradation(const CracDegradation& d) {
  if (d.efficiency <= 0.0 || d.efficiency > 1.0) {
    throw std::invalid_argument("CracSim: degradation efficiency must be in (0, 1]");
  }
  if (d.flow_factor <= 0.0 || d.flow_factor > 1.0) {
    throw std::invalid_argument("CracSim: degradation flow factor must be in (0, 1]");
  }
  degradation_ = d;
}

double CracSim::cop_at(double supply_temp_c) const {
  const double cop =
      cfg_.cop_ref + cfg_.cop_slope_per_k * (supply_temp_c - cfg_.cop_ref_temp_c);
  // Degraded efficiency scales the whole curve: same heat extracted, more
  // electricity. cop_min is a property of the healthy machine, so the
  // degraded COP may legitimately sit below it.
  return std::max(cfg_.cop_min, cop) * degradation_.efficiency;
}

void CracSim::apply_cooling(double return_temp_c, double cooling_cmd_w) {
  const double thermal_conductance = cfg_.c_air * flow_m3s();  // W/K
  // The coil can't cool below min_supply_c: that caps the extraction rate.
  const double max_by_supply =
      std::max(0.0, (return_temp_c - cfg_.min_supply_c) * thermal_conductance);
  const double limit = std::min(cfg_.max_cooling_w, max_by_supply);
  cooling_w_ = std::clamp(cooling_cmd_w, 0.0, limit);
  saturated_ = cooling_cmd_w > limit + 1e-9;
  supply_temp_c_ = return_temp_c - cooling_w_ / thermal_conductance;
}

void CracSim::step(double dt, double return_temp_c) {
  const double error = return_temp_c - setpoint_c_;  // positive -> need cooling
  integral_w_ += cfg_.pi_ki * error * dt;
  // Anti-windup: keep the integral inside the actuator range.
  integral_w_ = std::clamp(integral_w_, 0.0, cfg_.max_cooling_w);
  const double cmd = cfg_.pi_kp * error + integral_w_;
  apply_cooling(return_temp_c, cmd);
}

double CracSim::set_steady_operating_point(double return_temp_c,
                                           double required_cooling_w) {
  apply_cooling(return_temp_c, required_cooling_w);
  // Leave the PI integral consistent with the operating point so a
  // subsequent transient run doesn't jump.
  integral_w_ = cooling_w_;
  return cooling_w_;
}

double CracSim::electric_power_w() const {
  return cooling_w_ / cop_at(supply_temp_c_) + cfg_.fan_power_w;
}

void CracSim::reset_controller() {
  integral_w_ = 0.0;
}

}  // namespace coolopt::sim
