#include "sim/trace.h"

#include <stdexcept>

#include "util/csv.h"
#include "util/strings.h"

namespace coolopt::sim {

TraceRecorder::TraceRecorder(std::vector<std::string> channels)
    : channels_(std::move(channels)) {
  if (channels_.empty()) {
    throw std::invalid_argument("TraceRecorder: need at least one channel");
  }
}

void TraceRecorder::record(double time_s, std::span<const double> values) {
  if (values.size() != channels_.size()) {
    throw std::invalid_argument(util::strf(
        "TraceRecorder: %zu values for %zu channels", values.size(), channels_.size()));
  }
  times_.push_back(time_s);
  data_.insert(data_.end(), values.begin(), values.end());
}

std::vector<double> TraceRecorder::column(const std::string& channel) const {
  for (size_t c = 0; c < channels_.size(); ++c) {
    if (channels_[c] == channel) {
      std::vector<double> out;
      out.reserve(times_.size());
      for (size_t s = 0; s < times_.size(); ++s) out.push_back(value(s, c));
      return out;
    }
  }
  throw std::out_of_range("TraceRecorder: unknown channel " + channel);
}

double TraceRecorder::value(size_t sample, size_t channel) const {
  if (sample >= times_.size() || channel >= channels_.size()) {
    throw std::out_of_range("TraceRecorder: bad sample/channel index");
  }
  return data_[sample * channels_.size() + channel];
}

void TraceRecorder::write_csv(const std::string& path) const {
  std::vector<std::string> columns;
  columns.reserve(channels_.size() + 1);
  columns.emplace_back("time_s");
  for (const std::string& c : channels_) columns.push_back(c);
  util::CsvWriter writer(path, std::move(columns));
  for (size_t s = 0; s < times_.size(); ++s) {
    std::vector<double> row;
    row.reserve(channels_.size() + 1);
    row.push_back(times_[s]);
    for (size_t c = 0; c < channels_.size(); ++c) row.push_back(value(s, c));
    writer.row_numeric(row);
  }
}

}  // namespace coolopt::sim
