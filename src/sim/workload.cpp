#include "sim/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/room.h"

namespace coolopt::sim {

WorkloadDriver::WorkloadDriver(MachineRoom& room, double demand_files_s, util::Rng rng)
    : room_(room),
      demand_files_s_(demand_files_s),
      rng_(rng),
      rates_(room.size(), 0.0),
      queues_(room.size(), 0.0) {
  if (demand_files_s < 0.0) {
    throw std::invalid_argument("WorkloadDriver: negative demand");
  }
}

void WorkloadDriver::apply_allocation(const std::vector<double>& rates_files_s) {
  if (rates_files_s.size() != room_.size()) {
    throw std::invalid_argument("WorkloadDriver: allocation size mismatch");
  }
  for (size_t i = 0; i < rates_files_s.size(); ++i) {
    if (rates_files_s[i] < 0.0) {
      throw std::invalid_argument("WorkloadDriver: negative rate");
    }
    if (rates_files_s[i] > 0.0 && !room_.server(i).is_on()) {
      throw std::invalid_argument("WorkloadDriver: rate assigned to an OFF server");
    }
  }
  rates_ = rates_files_s;
  for (size_t i = 0; i < rates_.size(); ++i) {
    if (room_.server(i).is_on()) room_.set_load_files_s(i, rates_[i]);
  }
}

void WorkloadDriver::step(double dt) {
  if (dt <= 0.0) throw std::invalid_argument("WorkloadDriver::step: dt must be > 0");

  // Poisson arrivals for the step (normal approximation is fine for the
  // rates we run, but exact small-rate draws keep low-load tests honest).
  const double expected = demand_files_s_ * dt;
  double arrivals = 0.0;
  if (expected > 50.0) {
    arrivals = std::max(0.0, rng_.normal(expected, std::sqrt(expected)));
  } else if (expected > 0.0) {
    // Knuth's method.
    const double limit = std::exp(-expected);
    double p = 1.0;
    int k = 0;
    do {
      ++k;
      p *= rng_.uniform();
    } while (p > limit);
    arrivals = k - 1;
  }
  stats_.arrived += arrivals;

  // Dispatch proportionally to allocated rates.
  double total_rate = 0.0;
  for (const double r : rates_) total_rate += r;
  if (total_rate > 0.0 && arrivals > 0.0) {
    for (size_t i = 0; i < rates_.size(); ++i) {
      queues_[i] += arrivals * (rates_[i] / total_rate);
    }
  }

  // Serve each queue at its allocated rate (capped at machine capacity).
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (!room_.server(i).is_on()) continue;
    const double cap = room_.server(i).truth().capacity_files_s;
    const double service = std::min(rates_[i], cap) * dt;
    const double done = std::min(queues_[i], service);
    queues_[i] -= done;
    stats_.completed += done;
  }

  stats_.backlog = 0.0;
  for (const double q : queues_) stats_.backlog += q;
  stats_.backlog_time_integral += stats_.backlog * dt;
  stats_.elapsed_s += dt;
}

void WorkloadDriver::set_demand_files_s(double demand) {
  if (demand < 0.0) throw std::invalid_argument("WorkloadDriver: negative demand");
  demand_files_s_ = demand;
}

void WorkloadDriver::reset_stats() {
  stats_ = WorkloadStats{};
  std::fill(queues_.begin(), queues_.end(), 0.0);
}

double cluster_capacity_files_s(const MachineRoom& room, bool only_on) {
  double total = 0.0;
  for (size_t i = 0; i < room.size(); ++i) {
    if (only_on && !room.server(i).is_on()) continue;
    total += room.server(i).truth().capacity_files_s;
  }
  return total;
}

}  // namespace coolopt::sim
