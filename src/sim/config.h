// Configuration of the simulated machine room.
//
// Defaults approximate the paper's testbed: one rack of 20 Dell PowerEdge
// R210-class 1U servers in a small machine room cooled by a Liebert
// Challenger 3000-class CRAC that supplies cool air from the ceiling and
// holds the *return* (exhaust) air at an operator set point T_SP.
//
// Temperatures are degrees Celsius, powers Watts, flows m^3/s throughout.
#pragma once

#include <cstdint>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace coolopt::sim {

/// Per-server ground-truth parameters (before per-unit manufacturing jitter).
struct ServerConfig {
  // --- power ---
  double idle_power_w = 36.0;      ///< draw at 0% load, machine ON
  double peak_delta_w = 59.0;      ///< extra draw at 100% load
  double standby_power_w = 0.0;    ///< draw when switched OFF (0 == unplugged)
  /// Mild concavity of the real P(u) curve: P = idle + delta*(u + nl*u*(1-u)).
  /// The paper's linear Eq. 9 is a fit; nl > 0 gives that fit a realistic
  /// sub-percent residual.
  double power_nonlinearity = 0.06;

  // --- capacity ---
  double capacity_files_s = 40.0;  ///< max html files/s (the paper's workload)

  // --- thermals (Eq. 1-2 parameters) ---
  double cpu_heat_capacity = 450.0;   ///< nu_cpu, J/K (CPU + heatsink)
  double box_heat_capacity = 40.0;    ///< nu_box, J/K (chassis air)
  double cpu_box_exchange = 4.0;      ///< theta_cpu_box, W/K
  double fan_flow_m3s = 0.020;        ///< F_in == F_out while ON
  double off_flow_m3s = 0.0015;       ///< passive draft when OFF
  /// Fraction of electrical power dissipated at the CPU die; the rest heats
  /// the chassis air directly (PSU, DIMMs, drives).
  double cpu_heat_fraction = 0.65;
};

/// CRAC (computer-room air conditioner) ground truth.
struct CracConfig {
  double flow_m3s = 0.34;           ///< f_ac, held constant by the unit
  double c_air = 1210.0;            ///< J/(K m^3) volumetric heat capacity
  double fan_power_w = 140.0;       ///< constant circulation fan draw
  double max_cooling_w = 12000.0;   ///< chilled-water coil capacity
  double min_supply_c = 8.0;        ///< lowest achievable supply temperature

  /// Coefficient of performance at `cop_ref_temp_c`, and its slope per K of
  /// supply temperature. Rising COP with warmer supply air is one of the
  /// two physical mechanisms that make raising T_ac save energy (the other
  /// is envelope heat exchange, RoomConfig::wall_conductance_w_k); the
  /// paper's linear P_ac = c*f_ac*(T_SP - T_ac) model linearizes both.
  double cop_ref = 2.4;
  double cop_ref_temp_c = 15.0;
  double cop_slope_per_k = 0.20;
  double cop_min = 1.2;

  // PI controller holding return air at the set point.
  double pi_kp = 900.0;             ///< W per K of error
  double pi_ki = 25.0;              ///< W per (K*s)
  double control_period_s = 1.0;

  double default_setpoint_c = 24.0; ///< T_SP on power-up
};

/// Room geometry / airflow ground truth.
struct RoomConfig {
  size_t num_servers = 20;

  /// Racks in the room; servers are assigned to racks in contiguous blocks
  /// (server i sits in rack i / ceil(num_servers/num_racks)). The paper
  /// formulates load distribution "within or across racks"; with more than
  /// one rack the vent-distance penalty below adds cross-rack thermal
  /// diversity on top of the within-rack height gradient.
  size_t num_racks = 1;
  /// Extra recirculation per rack index beyond the first (racks farther
  /// from the CRAC vent breathe warmer air).
  double rack_recirc_penalty = 0.06;

  double ambient_heat_capacity = 6.0e4;  ///< J/K (~50 m^3 of air)
  /// Envelope exchange with the climate-controlled building: conduction
  /// through walls plus door/plenum air infiltration. Small machine rooms
  /// are leaky; a warm room exports a substantial share of its heat this
  /// way, which is the second reason warm supply air saves CRAC energy.
  double wall_conductance_w_k = 140.0;
  double outside_temp_c = 24.0;          ///< building corridor temperature

  /// Recirculation fraction of a server's intake drawn from warm room air
  /// instead of the cold supply stream, interpolated linearly from the
  /// bottom slot to the top slot (cool air falls: bottom machines sit in
  /// the cooler spot, as in the paper's testbed).
  double recirc_bottom = 0.05;
  double recirc_top = 0.68;

  /// Per-slot fan-flow derating from bottom to top (supply pressure drops
  /// along the rack), multiplicative on ServerConfig::fan_flow_m3s.
  double flow_derate_top = 0.82;

  /// Relative per-unit manufacturing jitter applied to power and thermal
  /// parameters (stddev, e.g. 0.02 == 2%).
  double unit_jitter = 0.02;

  /// Idiosyncratic per-unit airflow variation (fan aging, dust, cabling;
  /// stddev, relative). Deliberately larger than unit_jitter and
  /// UNCORRELATED with rack position: it makes "coolest spot at idle" an
  /// imperfect proxy for "easiest to cool under load", which is exactly
  /// the gap between the cool-job-allocation heuristic and the paper's
  /// optimal distribution.
  double airflow_jitter = 0.24;

  /// Per-unit CPU-to-air heat-exchange variation (heatsink mounting, paste
  /// quality; stddev, relative). Like airflow_jitter, it decorrelates
  /// "cool spot" from "easy to cool".
  double exchange_jitter = 0.15;

  /// Scales the spatial diversity of the room: 1.0 keeps recirc/flow
  /// gradients as configured, 0.0 collapses every slot to the mean (used by
  /// the diversity-ablation bench).
  double diversity_scale = 1.0;

  uint64_t seed = 42;

  ServerConfig server;
  CracConfig crac;

  /// Heterogeneous fleets: when non-empty, overrides `num_servers`/`server`
  /// — the room is built from these blocks in order (e.g. 12 old nodes
  /// followed by 8 new ones). Rack/slot geometry still follows the global
  /// index. The paper assumes a homogeneous fleet; heterogeneous power
  /// models route the optimizer through the LP path (see ScenarioPlanner).
  struct FleetBlock {
    ServerConfig server;
    size_t count = 0;
  };
  std::vector<FleetBlock> fleet;

  /// Servers in the room after accounting for `fleet`.
  size_t total_servers() const {
    if (fleet.empty()) return num_servers;
    size_t n = 0;
    for (const FleetBlock& b : fleet) n += b.count;
    return n;
  }

  // --- sensors ---
  double power_meter_noise_w = 0.35;     ///< Watts-up-Pro-like meter noise
  double power_meter_quantum_w = 0.1;
  double temp_sensor_noise_c = 0.25;     ///< lm-sensors readout noise
  double temp_sensor_quantum_c = 1.0;    ///< integer-degree readout

  // --- failure injection (all off by default) ---
  /// Probability per sample that a plug meter glitches by +- spike size
  /// (loose plugs and RF interference do this to real Watts-up meters).
  double power_meter_spike_prob = 0.0;
  double power_meter_spike_w = 300.0;
  /// Probability per sample that the temperature readout repeats its last
  /// value (an lm-sensors bus hiccup: the register is stale, not wrong).
  double temp_sensor_stuck_prob = 0.0;
};

/// Faults to inject for the duration of one measurement: failed server fans
/// (MachineRoom::set_fan_failed) and the sensor-level failure knobs above.
/// The evaluation layer routes these through one entry point
/// (control::EvalEngine::measure_faulted) so robustness studies do not
/// mutate shared rooms ad hoc.
struct FaultPlan {
  /// Server indices whose fans have failed (passive draft only).
  std::vector<size_t> failed_fans;
  /// Sensor faults, folded into the room's instrument configuration when
  /// positive (zero keeps the configured value).
  double power_meter_spike_prob = 0.0;
  double power_meter_spike_w = 300.0;
  double temp_sensor_stuck_prob = 0.0;

  bool empty() const {
    return failed_fans.empty() && power_meter_spike_prob <= 0.0 &&
           temp_sensor_stuck_prob <= 0.0;
  }

  /// Rejects fault targets that don't exist in a room of `total_servers`
  /// machines. Called by every consumer (EvalEngine::measure_faulted,
  /// FaultScheduler) before the plan can touch a room.
  void validate(size_t total_servers) const {
    for (size_t idx : failed_fans) {
      if (idx >= total_servers) {
        throw std::invalid_argument(
            "FaultPlan: failed-fan index " + std::to_string(idx) +
            " out of range (room has " + std::to_string(total_servers) +
            " servers)");
      }
    }
  }

  /// The room configuration with the sensor faults applied. Fan failures
  /// are runtime state, not configuration — the caller applies them to the
  /// built room via MachineRoom::set_fan_failed.
  RoomConfig applied_to(RoomConfig cfg) const {
    if (power_meter_spike_prob > 0.0) {
      cfg.power_meter_spike_prob = power_meter_spike_prob;
      cfg.power_meter_spike_w = power_meter_spike_w;
    }
    if (temp_sensor_stuck_prob > 0.0) {
      cfg.temp_sensor_stuck_prob = temp_sensor_stuck_prob;
    }
    return cfg;
  }
};

}  // namespace coolopt::sim
