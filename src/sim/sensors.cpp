#include "sim/sensors.h"

#include <cmath>

namespace coolopt::sim {

NoisySensor::NoisySensor(util::Rng rng, double noise_std, double quantum)
    : rng_(rng), noise_std_(noise_std), quantum_(quantum) {}

double NoisySensor::read(double truth) {
  double v = truth;
  if (noise_std_ > 0.0) v += rng_.normal(0.0, noise_std_);
  if (quantum_ > 0.0) v = std::round(v / quantum_) * quantum_;
  return v;
}

PowerMeter::PowerMeter(util::Rng rng, double noise_w, double quantum_w,
                       double spike_prob, double spike_w)
    : sensor_(rng, noise_w, quantum_w), spike_prob_(spike_prob), spike_w_(spike_w) {}

void PowerMeter::set_spike(double spike_prob, double spike_w) {
  spike_prob_ = spike_prob;
  spike_w_ = spike_w;
}

double PowerMeter::read_watts(double truth_w) {
  double v = sensor_.read(truth_w);
  if (spike_prob_ > 0.0 && sensor_.rng().chance(spike_prob_)) {
    v += sensor_.rng().chance(0.5) ? spike_w_ : -spike_w_;
  }
  return v;
}

TempSensor::TempSensor(util::Rng rng, double noise_c, double quantum_c,
                       double stuck_prob)
    : sensor_(rng, noise_c, quantum_c), stuck_prob_(stuck_prob) {}

void TempSensor::set_stuck_prob(double stuck_prob) { stuck_prob_ = stuck_prob; }

double TempSensor::read_celsius(double truth_c) {
  if (stuck_prob_ > 0.0 && has_last_ && sensor_.rng().chance(stuck_prob_)) {
    return last_c_;
  }
  last_c_ = sensor_.read(truth_c);
  has_last_ = true;
  return last_c_;
}

}  // namespace coolopt::sim
