#include "sim/fault_scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"
#include "sim/room.h"
#include "util/strings.h"

namespace coolopt::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFanFailure: return "fan-failure";
    case FaultKind::kServerOffline: return "server-offline";
    case FaultKind::kPowerMeterSpike: return "power-meter-spike";
    case FaultKind::kTempSensorStuck: return "temp-sensor-stuck";
    case FaultKind::kCracDegradation: return "crac-degradation";
    case FaultKind::kCracSetpointStuck: return "crac-setpoint-stuck";
  }
  return "unknown";
}

FaultScenario FaultScenario::from_plan(const FaultPlan& plan) {
  FaultScenario sc;
  sc.name = "from-plan";
  for (size_t idx : plan.failed_fans) {
    sc.events.push_back({0.0, FaultKind::kFanFailure, idx, false, 0.0, 0.0});
  }
  if (plan.power_meter_spike_prob > 0.0) {
    sc.events.push_back({0.0, FaultKind::kPowerMeterSpike,
                         FaultEvent::kAllServers, false,
                         plan.power_meter_spike_prob, plan.power_meter_spike_w});
  }
  if (plan.temp_sensor_stuck_prob > 0.0) {
    sc.events.push_back({0.0, FaultKind::kTempSensorStuck,
                         FaultEvent::kAllServers, false,
                         plan.temp_sensor_stuck_prob, 0.0});
  }
  return sc;
}

FaultScenario FaultScenario::named(const std::string& name) {
  FaultScenario sc;
  sc.name = name;
  // The canonical mid-run fault used across the robustness campaign and the
  // e2e tests: server 3's fan stops ten minutes in and stays broken.
  if (name == "fan-failure") {
    sc.events.push_back({600.0, FaultKind::kFanFailure, 3, false, 0.0, 0.0});
  } else if (name == "fan-flap") {
    // Fails, then a field tech reseats it half an hour later — exercises
    // the supervisor's probation/re-admission path.
    sc.events.push_back({600.0, FaultKind::kFanFailure, 3, false, 0.0, 0.0});
    sc.events.push_back({2400.0, FaultKind::kFanFailure, 3, true, 0.0, 0.0});
  } else if (name == "server-crash") {
    sc.events.push_back({600.0, FaultKind::kServerOffline, 3, false, 0.0, 0.0});
  } else if (name == "crac-degrade") {
    // Fouled coil + tired blower: 60% efficiency, 75% airflow.
    sc.events.push_back(
        {600.0, FaultKind::kCracDegradation, 0, false, 0.6, 0.75});
  } else if (name == "setpoint-stuck") {
    sc.events.push_back(
        {600.0, FaultKind::kCracSetpointStuck, 0, false, 0.0, 0.0});
  } else if (name == "sensor-stuck") {
    // Server 3's temperature register goes mostly stale — the watchdog has
    // to see through a sensor that keeps repeating itself.
    sc.events.push_back(
        {600.0, FaultKind::kTempSensorStuck, 3, false, 0.85, 0.0});
  } else {
    throw std::invalid_argument(
        "FaultScenario::named: unknown scenario '" + name + "'");
  }
  return sc;
}

std::vector<std::string> FaultScenario::names() {
  return {"fan-failure", "fan-flap",       "server-crash",
          "crac-degrade", "setpoint-stuck", "sensor-stuck"};
}

FaultScheduler::FaultScheduler(MachineRoom& room, FaultScenario scenario)
    : room_(room), scenario_(std::move(scenario)) {
  const size_t n = room_.size();
  for (size_t i = 0; i < scenario_.events.size(); ++i) {
    const FaultEvent& ev = scenario_.events[i];
    if (ev.time_s < 0.0) {
      throw std::invalid_argument(util::strf(
          "FaultScheduler: event %zu (%s) has negative time %.3f", i,
          to_string(ev.kind), ev.time_s));
    }
    switch (ev.kind) {
      case FaultKind::kFanFailure:
      case FaultKind::kServerOffline:
        if (ev.target >= n) {
          throw std::invalid_argument(util::strf(
              "FaultScheduler: event %zu (%s) targets server %zu but the "
              "room has %zu servers",
              i, to_string(ev.kind), ev.target, n));
        }
        break;
      case FaultKind::kPowerMeterSpike:
      case FaultKind::kTempSensorStuck:
        if (ev.target != FaultEvent::kAllServers && ev.target >= n) {
          throw std::invalid_argument(util::strf(
              "FaultScheduler: event %zu (%s) targets server %zu but the "
              "room has %zu servers",
              i, to_string(ev.kind), ev.target, n));
        }
        break;
      case FaultKind::kCracDegradation:
        if (!ev.clear && (ev.value <= 0.0 || ev.value > 1.0 ||
                          ev.value2 <= 0.0 || ev.value2 > 1.0)) {
          throw std::invalid_argument(util::strf(
              "FaultScheduler: event %zu (crac-degradation) needs "
              "efficiency/flow factors in (0, 1], got %.3f/%.3f",
              i, ev.value, ev.value2));
        }
        break;
      case FaultKind::kCracSetpointStuck:
        break;
    }
  }
  std::stable_sort(scenario_.events.begin(), scenario_.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
}

size_t FaultScheduler::advance_to(double time_s) {
  size_t fired = 0;
  while (next_ < scenario_.events.size() &&
         scenario_.events[next_].time_s <= time_s) {
    apply(scenario_.events[next_]);
    ++next_;
    ++fired;
  }
  return fired;
}

void FaultScheduler::apply(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kFanFailure:
      room_.set_fan_failed(ev.target, !ev.clear);
      break;
    case FaultKind::kServerOffline:
      room_.set_power_state(ev.target, ev.clear);
      break;
    case FaultKind::kPowerMeterSpike:
      if (ev.target == FaultEvent::kAllServers) {
        for (size_t i = 0; i < room_.size(); ++i) {
          room_.set_power_meter_spike(i, ev.clear ? 0.0 : ev.value, ev.value2);
        }
      } else {
        room_.set_power_meter_spike(ev.target, ev.clear ? 0.0 : ev.value,
                                    ev.value2);
      }
      break;
    case FaultKind::kTempSensorStuck:
      if (ev.target == FaultEvent::kAllServers) {
        for (size_t i = 0; i < room_.size(); ++i) {
          room_.set_temp_sensor_stuck(i, ev.clear ? 0.0 : ev.value);
        }
      } else {
        room_.set_temp_sensor_stuck(ev.target, ev.clear ? 0.0 : ev.value);
      }
      break;
    case FaultKind::kCracDegradation:
      crac_state_.efficiency = ev.clear ? 1.0 : ev.value;
      crac_state_.flow_factor = ev.clear ? 1.0 : ev.value2;
      room_.set_crac_degradation(crac_state_);
      break;
    case FaultKind::kCracSetpointStuck:
      crac_state_.setpoint_stuck = !ev.clear;
      room_.set_crac_degradation(crac_state_);
      break;
  }
  obs::count("sim.fault_events");
  if (obs::RunTrace* tr = obs::trace()) {
    tr->record_event(obs::EventSample{
        ev.time_s, ev.clear ? "fault.clear" : "fault.apply",
        static_cast<double>(ev.target),
        util::strf("%s target=%zu", to_string(ev.kind), ev.target)});
  }
}

}  // namespace coolopt::sim
