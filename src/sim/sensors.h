// Measurement devices.
//
// The paper instruments its rack with Watts up Pro power meters (per-server
// electrical draw) and lm-sensors CPU temperature readouts, then low-pass
// filters both before regression. These classes reproduce the measurement
// path: ground truth -> additive noise -> quantization — plus optional
// fault injection (meter glitch spikes, stuck temperature registers) for
// the robustness tests.
#pragma once

#include "util/rng.h"

namespace coolopt::sim {

/// Quantizing, noisy scalar sensor; the base for both meters below.
class NoisySensor {
 public:
  /// `noise_std` is the additive Gaussian noise, `quantum` the readout
  /// resolution (0 disables quantization).
  NoisySensor(util::Rng rng, double noise_std, double quantum);

  /// One sample of the instrument given the true value.
  double read(double truth);

  util::Rng& rng() { return rng_; }

 private:
  util::Rng rng_;
  double noise_std_;
  double quantum_;
};

/// Watts-up-Pro-like plug meter: ~0.1 W resolution, small noise floor,
/// optional glitch spikes of +- spike_w.
class PowerMeter {
 public:
  PowerMeter(util::Rng rng, double noise_w, double quantum_w,
             double spike_prob = 0.0, double spike_w = 300.0);
  /// Reads the instantaneous electrical draw, W.
  double read_watts(double truth_w);

  /// Starts (prob > 0) or ends (prob == 0) a glitch episode at runtime —
  /// the fault scheduler's knob. The meter's RNG stream is unchanged, so
  /// injecting an episode never perturbs other sensors' draws.
  void set_spike(double spike_prob, double spike_w);

 private:
  NoisySensor sensor_;
  double spike_prob_;
  double spike_w_;
};

/// lm-sensors-like on-die temperature readout: integer degrees C, optional
/// stuck-register samples that repeat the previous reading.
class TempSensor {
 public:
  TempSensor(util::Rng rng, double noise_c, double quantum_c,
             double stuck_prob = 0.0);
  /// Reads the CPU temperature, degrees C.
  double read_celsius(double truth_c);

  /// Starts (prob > 0) or ends (prob == 0) a stuck-register episode at
  /// runtime — the fault scheduler's knob.
  void set_stuck_prob(double stuck_prob);

 private:
  NoisySensor sensor_;
  double stuck_prob_;
  bool has_last_ = false;
  double last_c_ = 0.0;
};

}  // namespace coolopt::sim
