// The paper's workload: a steady stream of long-lived batch text-processing
// jobs (html -> word histogram), dispatched by a central load balancer.
//
// The evaluation only needs "total demand = X% of cluster capacity, split
// across machines per an allocation", but the examples and integration
// tests also exercise a stochastic arrival stream with per-server queues to
// verify the throughput constraint holds end to end.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace coolopt::sim {

class MachineRoom;

/// Counters accumulated by WorkloadDriver::step.
struct WorkloadStats {
  double arrived = 0.0;    ///< files offered
  double completed = 0.0;  ///< files fully processed
  double backlog = 0.0;    ///< files currently queued
  double elapsed_s = 0.0;
  /// Time integral of the backlog (file-seconds); the numerator of
  /// Little's law.
  double backlog_time_integral = 0.0;

  double throughput_files_s() const {
    return elapsed_s > 0.0 ? completed / elapsed_s : 0.0;
  }

  /// Mean time a job spends queued, via Little's law
  /// (mean backlog / throughput). 0 until anything completes.
  double mean_sojourn_s() const {
    if (elapsed_s <= 0.0 || completed <= 0.0) return 0.0;
    const double mean_backlog = backlog_time_integral / elapsed_s;
    return mean_backlog / throughput_files_s();
  }
};

/// Dispatches a Poisson stream of jobs to servers according to an
/// allocation (files/s per server) and drains per-server queues at the
/// allocated service rates.
class WorkloadDriver {
 public:
  WorkloadDriver(MachineRoom& room, double demand_files_s, util::Rng rng);

  /// Sets the per-server allocated service rates (files/s); also programs
  /// the room's server loads. Size must match the room. Rates on OFF
  /// servers must be 0.
  void apply_allocation(const std::vector<double>& rates_files_s);

  /// Advances arrivals/service by dt seconds (call alongside room.step).
  void step(double dt);

  void set_demand_files_s(double demand);
  double demand_files_s() const { return demand_files_s_; }

  const WorkloadStats& stats() const { return stats_; }
  void reset_stats();

  const std::vector<double>& queue_depths() const { return queues_; }

 private:
  MachineRoom& room_;
  double demand_files_s_;
  util::Rng rng_;
  std::vector<double> rates_;
  std::vector<double> queues_;
  WorkloadStats stats_;
};

/// Total capacity (files/s) of the ON servers in the room.
double cluster_capacity_files_s(const MachineRoom& room, bool only_on = false);

}  // namespace coolopt::sim
