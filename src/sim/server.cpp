#include "sim/server.h"

#include <algorithm>
#include <stdexcept>

namespace coolopt::sim {
namespace {

double jittered(util::Rng& rng, double value, double rel_std) {
  if (rel_std <= 0.0) return value;
  // Clamp at +-3 sigma so a pathological draw can't flip a sign.
  const double f = std::clamp(rng.normal(1.0, rel_std), 1.0 - 3.0 * rel_std,
                              1.0 + 3.0 * rel_std);
  return value * f;
}

}  // namespace

ServerSim::ServerSim(size_t slot, const ServerConfig& cfg, double unit_jitter,
                     double airflow_jitter, double exchange_jitter, util::Rng rng)
    : slot_(slot) {
  truth_.idle_power_w = jittered(rng, cfg.idle_power_w, unit_jitter);
  truth_.peak_delta_w = jittered(rng, cfg.peak_delta_w, unit_jitter);
  truth_.standby_power_w = cfg.standby_power_w;
  truth_.power_nonlinearity = cfg.power_nonlinearity;
  truth_.capacity_files_s = jittered(rng, cfg.capacity_files_s, unit_jitter);
  truth_.cpu_heat_capacity = jittered(rng, cfg.cpu_heat_capacity, unit_jitter);
  truth_.box_heat_capacity = jittered(rng, cfg.box_heat_capacity, unit_jitter);
  truth_.cpu_box_exchange = jittered(rng, cfg.cpu_box_exchange, exchange_jitter);
  truth_.fan_flow_m3s = jittered(rng, cfg.fan_flow_m3s, airflow_jitter);
  truth_.off_flow_m3s = cfg.off_flow_m3s;
  truth_.cpu_heat_fraction = cfg.cpu_heat_fraction;
}

void ServerSim::set_on(bool on) {
  on_ = on;
  if (!on_) utilization_ = 0.0;
}

void ServerSim::set_utilization(double u) {
  if (u < 0.0 || u > 1.0) {
    throw std::invalid_argument("ServerSim: utilization must be in [0,1]");
  }
  utilization_ = on_ ? u : 0.0;
}

void ServerSim::set_load_files_s(double files_s) {
  if (files_s < 0.0) throw std::invalid_argument("ServerSim: negative load");
  set_utilization(std::min(1.0, files_s / truth_.capacity_files_s));
}

double ServerSim::power_draw_w() const {
  if (!on_) return truth_.standby_power_w;
  const double u = utilization_;
  const double shape = u + truth_.power_nonlinearity * u * (1.0 - u);
  return truth_.idle_power_w + truth_.peak_delta_w * shape;
}

double ServerSim::airflow_m3s() const {
  if (!on_ || fan_failed_) return truth_.off_flow_m3s;
  return truth_.fan_flow_m3s;
}

}  // namespace coolopt::sim
