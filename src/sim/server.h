// One simulated computing unit (Section II-A of the paper): a CPU heat
// source inside a chassis air volume with intake/outtake airflow.
//
// The electrical model here is the *ground truth* the profiler regresses
// against: affine in load plus a mild concave term and per-unit jitter, so
// the paper's linear Eq. 9 fit has realistic sub-percent residuals.
// Thermal integration lives in MachineRoom (the chassis nodes are part of
// the room-level thermal network).
#pragma once

#include <cstddef>

#include "sim/config.h"
#include "util/rng.h"

namespace coolopt::sim {

/// Effective (jittered) per-unit parameters; exposed for tests and for
/// computing "oracle" model coefficients.
struct ServerTruth {
  double idle_power_w = 0.0;
  double peak_delta_w = 0.0;
  double standby_power_w = 0.0;
  double power_nonlinearity = 0.0;
  double capacity_files_s = 0.0;
  double cpu_heat_capacity = 0.0;
  double box_heat_capacity = 0.0;
  double cpu_box_exchange = 0.0;
  double fan_flow_m3s = 0.0;
  double off_flow_m3s = 0.0;
  double cpu_heat_fraction = 0.0;
  double recirc_fraction = 0.0;  ///< set by the room from the slot position
};

class ServerSim {
 public:
  /// `slot` is the rack position, 0 == bottom. Jitter is drawn from `rng`;
  /// `airflow_jitter` applies to the fan flow, `exchange_jitter` to the
  /// CPU-to-air heat-exchange rate (see RoomConfig).
  ServerSim(size_t slot, const ServerConfig& cfg, double unit_jitter,
            double airflow_jitter, double exchange_jitter, util::Rng rng);

  size_t slot() const { return slot_; }
  const ServerTruth& truth() const { return truth_; }
  void set_recirc_fraction(double r) { truth_.recirc_fraction = r; }
  void scale_fan_flow(double factor) { truth_.fan_flow_m3s *= factor; }

  // --- power state ---
  bool is_on() const { return on_; }
  void set_on(bool on);

  // --- load ---
  /// Utilization in [0,1] (fraction of this unit's capacity).
  double utilization() const { return utilization_; }
  /// Sets utilization; ignored (forced to 0) while the unit is OFF.
  void set_utilization(double u);

  /// Load in workload units (files/s) corresponding to current utilization.
  double load_files_s() const { return utilization_ * truth_.capacity_files_s; }
  /// Sets utilization from a files/s assignment (clamped to capacity).
  void set_load_files_s(double files_s);

  // --- electrical ---
  /// Instantaneous true electrical draw, W.
  double power_draw_w() const;

  // --- airflow ---
  /// Current chassis airflow (fans off when the unit is off or failed).
  double airflow_m3s() const;

  // --- failure injection ---
  /// A failed fan moves only passive draft even while the unit is ON; the
  /// CPU then runs far hotter than any fitted model predicts.
  void set_fan_failed(bool failed) { fan_failed_ = failed; }
  bool fan_failed() const { return fan_failed_; }

 private:
  size_t slot_;
  ServerTruth truth_;
  bool on_ = true;
  bool fan_failed_ = false;
  double utilization_ = 0.0;
};

}  // namespace coolopt::sim
