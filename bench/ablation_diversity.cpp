// Ablation: how the holistic method's advantage scales with the room's
// spatial thermal diversity.
//
// The paper's introduction predicts: "savings in larger systems will be
// more pronounced, as larger spatial diversity gives rise to more
// opportunities for optimization." We test the converse too: as
// diversity_scale -> 0 every slot becomes thermally identical and the
// optimal distribution degenerates to Even, so #8's edge over #7 should
// shrink toward the pure-consolidation difference.

#include <cstdio>

#include "bench/common.h"

using namespace coolopt;

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Ablation: holistic advantage vs spatial diversity\n\n");

  const std::vector<double> scales = {0.0, 0.25, 0.5, 0.75, 1.0, 1.25};
  const std::vector<double> loads = {30, 50, 70, 90};
  util::TextTable out({"diversity scale", "avg #7 (W)", "avg #8 (W)",
                       "avg saving (%)", "best saving (%)"});

  std::vector<double> avg_savings;
  for (const double scale : scales) {
    control::HarnessOptions options = benchsup::standard_options();
    options.room.diversity_scale = scale;
    control::EvalHarness harness(options);
    const auto table = benchsup::run_sweep(
        harness, {core::Scenario::by_number(7), core::Scenario::by_number(8)},
        loads);

    double sum7 = 0.0;
    double sum8 = 0.0;
    double best = 0.0;
    for (const double pct : loads) {
      const double p7 = table.at(7, pct).measurement.total_power_w;
      const double p8 = table.at(8, pct).measurement.total_power_w;
      sum7 += p7;
      sum8 += p8;
      best = std::max(best, benchsup::saving_pct(p7, p8));
    }
    const double avg_saving = benchsup::saving_pct(sum7, sum8);
    avg_savings.push_back(avg_saving);
    out.row({util::strf("%.2f", scale), util::strf("%.0f", sum7 / loads.size()),
             util::strf("%.0f", sum8 / loads.size()),
             util::strf("%.1f", avg_saving), util::strf("%.1f", best)});
  }
  std::printf("%s", out.render().c_str());

  const bool pass = avg_savings.back() > avg_savings.front() + 1.0;
  std::printf("\nShape check (savings grow with spatial diversity): %s "
              "(%.1f%% at scale 0 -> %.1f%% at max)\n",
              pass ? "PASS" : "FAIL", avg_savings.front(), avg_savings.back());
  return pass ? 0 : 1;
}
