// PlanEngine hot-path performance: what the zero-allocation solve path and
// the monotone plan memo buy on the warm replan loop.
//
// Three timings per fleet size, all on scenario #8 (the paper's holistic
// Optimal + AC + consolidation arm) over a 16-load operating cycle:
//
//   cold      construct-and-solve once: the pre-engine call pattern, full
//             model validation + Algorithm 1 preprocessing (context line —
//             not gated here; perf_scale owns the cold-path targets);
//   full      warm engine with the memo disabled (PlannerOptions::
//             enable_memo = false): every solve walks the consolidation
//             ranking — the pre-memo warm path, on the same scratch arena;
//   memo      warm engine with the memo enabled (the default): same-cycle
//             loads answer from the (k, segment) fast path after the first
//             lap seeds it.
//
// Targets (exit nonzero when missed):
//   * warm-solve p50 with the memo >= 2x better than without at n = 200;
//   * the memo actually engages (hit counter advances) at every n;
//   * memo-on plans are bit-for-bit the memo-off plans at every load —
//     the fast path may change WHEN a plan is computed, never WHAT.
//
// Emits BENCH_engine.json (override with --json-out); tools/check_bench.sh
// validates the shape of every BENCH_*.json in CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/scratch.h"
#include "core/synthetic.h"
#include "obs/json_writer.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

using namespace coolopt;

namespace {

double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// SKU-structured fleet (8 machine classes replicated across n slots) with
/// 3x capacity headroom, as in perf_scale: per-machine caps stay slack at
/// the cycle's operating points, so both arms run the pure closed-form
/// walk and the timing isolates ranking-vs-memo, not LP fallbacks.
core::RoomModel sku_model(size_t machines, uint64_t seed) {
  constexpr size_t kSkus = 8;
  core::SyntheticModelOptions opt;
  opt.machines = machines;
  opt.seed = seed;
  core::RoomModel model = core::make_synthetic_model(opt);
  for (size_t i = kSkus; i < model.size(); ++i) {
    model.machines[i] = model.machines[i % kSkus];
  }
  for (core::MachineModel& m : model.machines) m.capacity *= 3.0;
  return model;
}

/// The repeating operating cycle: 16 loads between 15% and 35% of (the
/// headroom-inflated) capacity — a day of demand levels the planner keeps
/// revisiting, which is exactly the shape the memo exists for.
std::vector<double> load_cycle(const core::RoomModel& model) {
  constexpr size_t kPoints = 16;
  std::vector<double> loads(kPoints);
  for (size_t i = 0; i < kPoints; ++i) {
    loads[i] = model.total_capacity() *
               (0.15 + 0.20 * static_cast<double>(i) /
                           static_cast<double>(kPoints));
  }
  return loads;
}

bool plans_identical(const core::PlanResult& a, const core::PlanResult& b) {
  if (a.plan.has_value() != b.plan.has_value()) return false;
  if (a.shed_load != b.shed_load) return false;
  if (!a.plan.has_value()) return true;
  return a.plan->allocation.on == b.plan->allocation.on &&
         a.plan->allocation.loads == b.plan->allocation.loads &&
         a.plan->allocation.t_ac == b.plan->allocation.t_ac &&
         a.plan->allocation.total_power_w == b.plan->allocation.total_power_w;
}

struct CaseResult {
  size_t n = 0;
  double cold_us = 0.0;
  double full_p50_us = 0.0;  ///< warm, memo disabled
  double memo_p50_us = 0.0;  ///< warm, memo enabled
  uint64_t memo_hits = 0;
  bool identical = false;
  double speedup() const {
    return memo_p50_us > 0.0 ? full_p50_us / memo_p50_us : 0.0;
  }
};

/// Warm p50: `rounds` laps of the cycle through one PlanResult slot (the
/// zero-allocation call shape), timed per solve.
double warm_p50_us(const core::PlanEngine& engine,
                   const std::vector<double>& loads, size_t rounds) {
  const core::Scenario holistic = core::Scenario::by_number(8);
  core::PlanRequest req(holistic, 0.0);
  core::PlanResult slot;
  std::vector<double> samples;
  samples.reserve(rounds * loads.size());
  for (size_t r = 0; r < rounds; ++r) {
    for (const double load : loads) {
      req.load = load;
      const auto t0 = std::chrono::steady_clock::now();
      engine.solve_into(req, core::SolveScratch::local(), slot);
      samples.push_back(us_since(t0));
    }
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

CaseResult run_case(size_t n, size_t rounds) {
  CaseResult r;
  r.n = n;
  const core::RoomModel room = sku_model(n, 42);
  const core::SharedRoomModel shared = core::share_model(room);
  const std::vector<double> loads = load_cycle(room);
  const core::Scenario holistic = core::Scenario::by_number(8);

  {  // cold reference: construct + first solve, preprocessing included
    const auto t0 = std::chrono::steady_clock::now();
    core::PlanEngine cold(shared);
    (void)cold.solve(core::PlanRequest(holistic, loads.front()));
    r.cold_us = us_since(t0);
  }

  core::PlannerOptions no_memo;
  no_memo.enable_memo = false;
  const core::PlanEngine full(shared, no_memo);
  const core::PlanEngine memo(shared);

  // Prime both arms with one full lap: caches hot, memo seeded.
  for (const double load : loads) {
    (void)full.solve(core::PlanRequest(holistic, load));
    (void)memo.solve(core::PlanRequest(holistic, load));
  }

  r.full_p50_us = warm_p50_us(full, loads, rounds);
  r.memo_p50_us = warm_p50_us(memo, loads, rounds);
  r.memo_hits = memo.counters().memo_hits;

  // The fast path may change when a plan is computed, never what: every
  // cycle load must produce bit-identical plans on both arms.
  r.identical = true;
  for (const double load : loads) {
    const core::PlanResult a = full.solve(core::PlanRequest(holistic, load));
    const core::PlanResult b = memo.solve(core::PlanRequest(holistic, load));
    if (!plans_identical(a, b)) {
      r.identical = false;
      break;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  util::CliFlags flags;
  flags.define("json-out", "machine-readable results path",
               "BENCH_engine.json");
  flags.define("rounds", "warm cycle laps per measurement", "32");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s",
                flags.usage("PlanEngine warm solve-path performance").c_str());
    return 0;
  }
  const size_t rounds = static_cast<size_t>(flags.get_int("rounds", 32));

  std::printf("PlanEngine hot path: scratch arena + plan memo\n\n");

  std::vector<CaseResult> results;
  results.push_back(run_case(200, rounds));
  // The big room gets fewer laps: its memo-off arm re-walks a ~10k-wide
  // ranking per solve and exists to show the asymptotic gap, not to soak.
  results.push_back(run_case(10000, std::max<size_t>(2, rounds / 8)));

  util::TextTable table({"n", "cold (us)", "full p50 (us)", "memo p50 (us)",
                         "speedup", "memo hits", "identical"});
  bool pass = true;
  for (const CaseResult& r : results) {
    table.row({util::strf("%zu", r.n), util::strf("%.0f", r.cold_us),
               util::strf("%.1f", r.full_p50_us),
               util::strf("%.1f", r.memo_p50_us),
               util::strf("%.2f", r.speedup()),
               util::strf("%llu", static_cast<unsigned long long>(r.memo_hits)),
               r.identical ? "yes" : "NO"});
    if (!r.identical || r.memo_hits == 0) pass = false;
    if (r.n == 200 && r.speedup() < 2.0) pass = false;
  }
  std::printf("%s\n", table.render().c_str());

  const std::string json_path =
      flags.get_string("json-out", "BENCH_engine.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 2;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "engine");
  w.kv("rounds", static_cast<uint64_t>(rounds));
  w.key("cases");
  w.begin_array();
  for (const CaseResult& r : results) {
    w.begin_object();
    w.kv("n", static_cast<uint64_t>(r.n));
    w.kv("cold_us", r.cold_us);
    w.kv("full_p50_us", r.full_p50_us);
    w.kv("memo_p50_us", r.memo_p50_us);
    w.kv("speedup", r.speedup());
    w.kv("memo_hits", r.memo_hits);
    w.kv("identical", r.identical);
    w.end_object();
  }
  w.end_array();
  w.kv("pass", pass);
  w.end_object();
  out << "\n";
  std::printf("(JSON written to %s)\n", json_path.c_str());

  std::printf(
      "Targets (memo p50 >= 2x the full walk at n = 200; memo engages and "
      "plans stay bit-for-bit at every n): %s\n",
      pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
