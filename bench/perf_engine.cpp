// PlanEngine performance: what the shared caches buy.
//
// Cold-construct-and-solve rebuilds the whole solver stack per plan — the
// pre-engine call pattern, where every ScenarioPlanner construction re-ran
// model validation and (for consolidation scenarios) the O(n^3 lg n)
// Algorithm 1 preprocessing. Warm replan reuses one engine across plans, so
// every model-derived artifact is a cache hit; the gap between the two is
// the engine's whole reason to exist (>= 10x at n = 200). Batch throughput
// measures solve_batch fan-out over the worker pool; scenario #6 (Optimal
// +AC, no consolidation) keeps n = 500 within the closed form + LP paths,
// where Algorithm 1's event table would otherwise dominate memory.
//
// Run with --metrics-out PATH to export the engine.* metrics (cache
// hit/miss counts, solve and batch latency histograms) alongside the
// benchmark numbers.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/engine.h"
#include "core/synthetic.h"
#include "obs/session.h"

using namespace coolopt;

namespace {

core::RoomModel model_of_size(size_t n) {
  core::SyntheticModelOptions options;
  options.machines = n;
  options.seed = 7;
  return core::make_synthetic_model(options);
}

std::vector<double> load_points(const core::RoomModel& model, size_t count) {
  std::vector<double> loads(count);
  for (size_t i = 0; i < count; ++i) {
    loads[i] = model.total_capacity() * (0.25 + 0.5 * static_cast<double>(i) /
                                                    static_cast<double>(count));
  }
  return loads;
}

/// Pre-engine behavior: a fresh solver stack per plan (validation +
/// Algorithm 1 preprocessing every time).
void BM_ColdConstructAndSolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::RoomModel model = model_of_size(n);
  const core::Scenario holistic = core::Scenario::by_number(8);
  const core::SharedRoomModel shared = core::share_model(model);
  const double load = model.total_capacity() * 0.6;
  for (auto _ : state) {
    const core::PlanEngine engine(shared);
    benchmark::DoNotOptimize(engine.solve(core::PlanRequest{holistic, load}));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ColdConstructAndSolve)
    ->Arg(20)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

/// Engine behavior: one shared engine, every artifact cached.
void BM_WarmReplan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::PlanEngine engine(model_of_size(n));
  const core::Scenario holistic = core::Scenario::by_number(8);
  const std::vector<double> loads = load_points(engine.model(), 16);
  // Prime the caches: the first solve pays the one-time preprocessing.
  engine.solve(core::PlanRequest{holistic, loads.front()});
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.solve(core::PlanRequest{holistic, loads[i++ % loads.size()]}));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_WarmReplan)->Arg(20)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

/// solve_batch fan-out, 64 requests per batch, default worker pool.
void BM_BatchThroughput(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::PlanEngine engine(model_of_size(n));
  const core::Scenario optimal_ac = core::Scenario::by_number(6);
  const std::vector<double> loads = load_points(engine.model(), 64);
  std::vector<core::PlanRequest> requests;
  requests.reserve(loads.size());
  for (const double load : loads) {
    requests.push_back(core::PlanRequest{optimal_ac, load});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.solve_batch(requests));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(requests.size()));
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_BatchThroughput)
    ->Arg(20)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);

/// Sequential baseline for the batch (same requests, no pool).
void BM_SequentialSolves(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::PlanEngine engine(model_of_size(n));
  const core::Scenario optimal_ac = core::Scenario::by_number(6);
  const std::vector<double> loads = load_points(engine.model(), 64);
  for (auto _ : state) {
    for (const double load : loads) {
      benchmark::DoNotOptimize(
          engine.solve(core::PlanRequest{optimal_ac, load}));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(loads.size()));
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_SequentialSolves)
    ->Arg(20)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Like BENCHMARK_MAIN(), but peels off --metrics-out/--trace-out first so
// the suite can export the engine.* telemetry (benchmark::Initialize
// rejects flags it does not know about).
int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
