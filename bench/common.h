// Shared plumbing for the figure-reproduction binaries: one standard
// harness configuration (the 20-machine testbed stand-in), scenario-sweep
// tables in the layout of the paper's figures, and optional CSV export via
// the COOLOPT_BENCH_CSV_DIR environment variable.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "control/harness.h"
#include "obs/session.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

namespace coolopt::benchsup {

/// The standard evaluation harness: 20 machines, fixed seed, 1 K planning
/// margin, steady-state runs.
inline control::HarnessOptions standard_options(uint64_t seed = 42) {
  control::HarnessOptions options;
  options.room.num_servers = 20;
  options.room.seed = seed;
  return options;
}

/// Measured total power for a set of scenarios across the paper's load
/// axis. Rows keyed by (scenario number, load in basis points): keying by
/// a truncated integer percent silently collided fractional loads (12.5
/// and 12.9 both landed on 12).
struct SweepTable {
  std::vector<core::Scenario> scenarios;
  std::vector<double> loads;
  std::map<std::pair<int, long long>, control::EvalPoint> points;

  /// Load axis key: basis points (hundredths of a percent), exact for any
  /// axis anyone plots.
  static long long load_key(double load_pct) {
    return std::llround(load_pct * 100.0);
  }

  const control::EvalPoint& at(int scenario_number, double load_pct) const {
    return points.at({scenario_number, load_key(load_pct)});
  }
};

inline SweepTable run_sweep(control::EvalHarness& harness,
                            const std::vector<core::Scenario>& scenarios,
                            const std::vector<double>& loads) {
  SweepTable table;
  table.scenarios = scenarios;
  table.loads = loads;
  // One parallel, memoized sweep through the shared EvalEngine —
  // scenario-major, bit-for-bit what the serial measure() loop returns.
  std::vector<control::EvalPoint> rows = harness.sweep(scenarios, loads);
  size_t r = 0;
  for (const core::Scenario& s : scenarios) {
    for (const double pct : loads) {
      table.points.emplace(std::make_pair(s.number, SweepTable::load_key(pct)),
                           std::move(rows[r++]));
    }
  }
  return table;
}

/// Prints the figure's series: one row per load, one column per scenario
/// (total measured power, W — the paper's y-axis).
inline void print_power_table(const SweepTable& table, const char* title) {
  std::printf("%s\n", title);
  std::vector<std::string> columns{"load %"};
  for (const core::Scenario& s : table.scenarios) columns.push_back(s.name());
  util::TextTable out(columns);
  for (const double pct : table.loads) {
    std::vector<std::string> row{util::strf("%.0f", pct)};
    for (const core::Scenario& s : table.scenarios) {
      const control::EvalPoint& p = table.at(s.number, pct);
      row.push_back(p.feasible
                        ? util::strf("%.0f", p.measurement.total_power_w)
                        : std::string("infeasible"));
    }
    out.row(std::move(row));
  }
  std::printf("%s\n", out.render().c_str());
}

/// Writes the sweep as CSV when COOLOPT_BENCH_CSV_DIR is set.
inline void maybe_export_csv(const SweepTable& table, const char* name) {
  const char* dir = std::getenv("COOLOPT_BENCH_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = util::strf("%s/%s.csv", dir, name);
  util::CsvWriter w(path, {"scenario", "load_pct", "total_w", "it_w", "crac_w",
                           "machines_on", "t_ac_c", "peak_cpu_c", "violation"});
  for (const core::Scenario& s : table.scenarios) {
    for (const double pct : table.loads) {
      const control::EvalPoint& p = table.at(s.number, pct);
      if (!p.feasible) continue;
      w.row({s.name(), util::strf("%.0f", pct),
             util::strf("%.1f", p.measurement.total_power_w),
             util::strf("%.1f", p.measurement.it_power_w),
             util::strf("%.1f", p.measurement.crac_power_w),
             util::strf("%zu", p.measurement.machines_on),
             util::strf("%.2f", p.measurement.t_ac_achieved_c),
             util::strf("%.2f", p.measurement.peak_cpu_temp_c),
             p.measurement.temp_violation ? "1" : "0"});
    }
  }
  std::printf("(CSV written to %s)\n", path.c_str());
}

/// Percent saving of `ours` relative to `theirs`.
inline double saving_pct(double theirs, double ours) {
  return 100.0 * (theirs - ours) / theirs;
}

/// Average measured total power of one scenario across the loads.
inline double average_power(const SweepTable& table, int scenario_number) {
  double sum = 0.0;
  size_t n = 0;
  for (const double pct : table.loads) {
    const control::EvalPoint& p = table.at(scenario_number, pct);
    if (!p.feasible) continue;
    sum += p.measurement.total_power_w;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace coolopt::benchsup
