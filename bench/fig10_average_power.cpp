// Reproduces Fig. 10: average measured power of every method over the load
// sweep, plus the paper's headline numbers — the holistic method (#8) saves
// on average vs the best prior heuristic (#7, cool job allocation), with a
// distinctly larger best case.
//
// Paper: "our solution saves 7% of the total energy consumption on average
// over all load scenarios and is able to save up to 18% in the best case
// compared to the next best baseline, method #7."

#include <cstdio>

#include "bench/common.h"

using namespace coolopt;

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Fig. 10 reproduction: average power of all methods\n\n");

  control::EvalHarness harness(benchsup::standard_options());
  const auto table = benchsup::run_sweep(harness, core::Scenario::all8(),
                                         control::paper_load_axis());

  util::TextTable out({"method", "average power (W)", "vs #8 (%)"});
  const double avg8 = benchsup::average_power(table, 8);
  for (const core::Scenario& s : table.scenarios) {
    const double avg = benchsup::average_power(table, s.number);
    out.row({s.name(), util::strf("%.0f", avg),
             util::strf("%.1f", benchsup::saving_pct(avg, avg8))});
  }
  std::printf("%s\n", out.render().c_str());
  benchsup::maybe_export_csv(table, "fig10_average_power");

  // Headline numbers vs the best baseline.
  double best_case = 0.0;
  double worst_case = 1e9;
  for (const double pct : table.loads) {
    const double s = benchsup::saving_pct(
        table.at(7, pct).measurement.total_power_w,
        table.at(8, pct).measurement.total_power_w);
    best_case = std::max(best_case, s);
    worst_case = std::min(worst_case, s);
  }
  const double avg7 = benchsup::average_power(table, 7);
  const double avg_saving = benchsup::saving_pct(avg7, avg8);
  std::printf("Holistic (#8) vs cool job allocation (#7):\n");
  std::printf("  average saving : %5.1f%%   (paper: ~7%%)\n", avg_saving);
  std::printf("  best case      : %5.1f%%   (paper: up to 18%%)\n", best_case);
  std::printf("  worst case     : %5.1f%%   (paper: never loses)\n", worst_case);

  // Also check #8 is the best method overall.
  bool is_best = true;
  for (const core::Scenario& s : table.scenarios) {
    if (s.number != 8 && benchsup::average_power(table, s.number) < avg8 - 1e-9) {
      is_best = false;
    }
  }

  const bool pass =
      is_best && avg_saving >= 3.0 && best_case >= 10.0 && worst_case >= -0.5;
  std::printf("\nShape check (#8 best on average; avg saving >= 3%%, best case "
              ">= 10%%, never loses materially): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
