// Measurement-stack performance: what EvalEngine's shared profile, memo
// cache and parallel sweep buy, as the paper's grid grows.
//
// Four timings per grid size, on the standard 20-machine testbed stand-in:
//
//   cold      construct-and-measure from scratch — profiling campaign plus
//             a serial sweep (the pre-engine EvalHarness call pattern);
//   warm      the same sweep again on the same engine: every point is a
//             memo-cache hit, nothing settles (target: >= 10x vs cold);
//   serial    a fresh engine with the profile pre-built, sweeping the grid
//             cold at 1 worker (isolates measurement from profiling);
//   parallel  ditto at 8 workers over pooled room replicas (target:
//             measurably faster than serial, bit-for-bit identical).
//
// The load axis is deliberately fractional: those points would have
// collided under the old integer-truncated SweepTable keying.
//
// Emits a machine-readable BENCH_sweep.json (override with --json-out) so
// the perf trajectory can be tracked across commits, and exits nonzero if
// a target is missed or any parallel result diverges from serial.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "control/eval_engine.h"
#include "obs/json_writer.h"
#include "util/cli.h"

using namespace coolopt;

namespace {

struct CaseResult {
  size_t points = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;

  double warm_speedup() const { return warm_ms > 0.0 ? cold_ms / warm_ms : 0.0; }
  double parallel_speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// `count` distinct fractional load percentages in (0, 100].
std::vector<double> fractional_load_axis(size_t count) {
  std::vector<double> loads(count);
  for (size_t i = 0; i < count; ++i) {
    loads[i] = 100.0 * static_cast<double>(i + 1) / static_cast<double>(count);
  }
  return loads;
}

bool points_identical(const std::vector<control::EvalPoint>& a,
                      const std::vector<control::EvalPoint>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const control::EvalPoint& x = a[i];
    const control::EvalPoint& y = b[i];
    if (x.feasible != y.feasible || x.load_pct != y.load_pct ||
        x.scenario.number != y.scenario.number) {
      return false;
    }
    if (!x.feasible) continue;
    if (x.measurement.total_power_w != y.measurement.total_power_w ||
        x.measurement.it_power_w != y.measurement.it_power_w ||
        x.measurement.crac_power_w != y.measurement.crac_power_w ||
        x.measurement.peak_cpu_temp_c != y.measurement.peak_cpu_temp_c ||
        x.measurement.t_ac_achieved_c != y.measurement.t_ac_achieved_c ||
        x.measurement.machines_on != y.measurement.machines_on ||
        x.plan.allocation.t_ac != y.plan.allocation.t_ac ||
        x.plan.allocation.loads != y.plan.allocation.loads ||
        x.plan.allocation.on != y.plan.allocation.on) {
      return false;
    }
  }
  return true;
}

CaseResult run_case(const std::vector<core::Scenario>& scenarios,
                    const std::vector<double>& loads) {
  const control::EvalOptions options = benchsup::standard_options();
  CaseResult r;
  r.points = scenarios.size() * loads.size();

  auto t0 = std::chrono::steady_clock::now();
  control::EvalEngine engine(options);
  const auto cold_rows = engine.sweep(scenarios, loads, 1);
  r.cold_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  const auto warm_rows = engine.sweep(scenarios, loads, 1);
  r.warm_ms = ms_since(t0);

  control::EvalEngine serial_engine(options);
  serial_engine.profile();  // pre-pay the campaign; time the sweep alone
  t0 = std::chrono::steady_clock::now();
  const auto serial_rows = serial_engine.sweep(scenarios, loads, 1);
  r.serial_ms = ms_since(t0);

  control::EvalEngine parallel_engine(options);
  parallel_engine.profile();
  t0 = std::chrono::steady_clock::now();
  const auto parallel_rows = parallel_engine.sweep(scenarios, loads, 8);
  r.parallel_ms = ms_since(t0);

  r.identical = points_identical(serial_rows, parallel_rows) &&
                points_identical(cold_rows, warm_rows) &&
                points_identical(cold_rows, serial_rows);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  util::CliFlags flags;
  flags.define("json-out", "machine-readable results path", "BENCH_sweep.json");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("EvalEngine sweep performance").c_str());
    return 0;
  }

  std::printf("EvalEngine sweep performance (20-machine room)\n\n");

  // n = 20: two scenarios across ten fractional loads. n = 200: the full
  // eight-scenario grid across twenty-five.
  const std::vector<core::Scenario> small_set = {core::Scenario::by_number(6),
                                                 core::Scenario::by_number(8)};
  std::vector<CaseResult> results;
  results.push_back(run_case(small_set, fractional_load_axis(10)));
  results.push_back(run_case(core::Scenario::all8(), fractional_load_axis(25)));

  util::TextTable table({"points", "cold (ms)", "warm (ms)", "warm x",
                         "serial (ms)", "parallel (ms)", "parallel x",
                         "identical"});
  bool pass = true;
  for (const CaseResult& r : results) {
    table.row({util::strf("%zu", r.points), util::strf("%.1f", r.cold_ms),
               util::strf("%.2f", r.warm_ms),
               util::strf("%.1f", r.warm_speedup()),
               util::strf("%.1f", r.serial_ms),
               util::strf("%.1f", r.parallel_ms),
               util::strf("%.2f", r.parallel_speedup()),
               r.identical ? "yes" : "NO"});
    if (r.warm_speedup() < 10.0 || !r.identical) pass = false;
  }
  // The parallel target applies at the larger grid (enough independent
  // work to amortize the pool) and only where the hardware can actually
  // run workers side by side — on a single-core host the sweep still must
  // be bit-for-bit identical, but it cannot be faster.
  const size_t cores = std::max<size_t>(1, std::thread::hardware_concurrency());
  if (cores > 1 && results.back().parallel_speedup() <= 1.0) pass = false;
  std::printf("%s\n", table.render().c_str());
  if (cores == 1) {
    std::printf("(single-core host: parallel-speedup target not applicable)\n");
  }

  const std::string json_path =
      flags.get_string("json-out", "BENCH_sweep.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 2;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "sweep");
  w.kv("room_servers", static_cast<uint64_t>(20));
  w.kv("hardware_cores", static_cast<uint64_t>(cores));
  w.key("cases");
  w.begin_array();
  for (const CaseResult& r : results) {
    w.begin_object();
    w.kv("points", static_cast<uint64_t>(r.points));
    w.kv("cold_ms", r.cold_ms);
    w.kv("warm_ms", r.warm_ms);
    w.kv("serial_ms", r.serial_ms);
    w.kv("parallel_ms", r.parallel_ms);
    w.kv("warm_speedup", r.warm_speedup());
    w.kv("parallel_speedup", r.parallel_speedup());
    w.kv("identical", r.identical);
    w.end_object();
  }
  w.end_array();
  w.kv("pass", pass);
  w.end_object();
  out << "\n";
  std::printf("(JSON written to %s)\n", json_path.c_str());

  std::printf("Targets (warm >= 10x cold; parallel > 1x serial at the large "
              "grid on multi-core hosts; parallel bit-for-bit identical to "
              "serial): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
