// Chaos campaign: goodput and byte-integrity of cooloptd under deterministic
// fault injection, with a degraded fleet.
//
// Setup: a model-backed service partitioned into 8 fleet shards, with the
// ChaosInjector dropping 1% of accepted connections (seeded, so the fault
// sequence is reproducible run to run). Every request is a `fleetplan` that
// declares shards 2 and 5 down, so each solve exercises the failure-domain
// path: the down shards' healthy share is re-water-filled across the six
// survivors and the response carries the per-shard status + redistribution
// accounting. Clients issue each request on a fresh connection (every call
// is an accept, i.e. a drop opportunity) through call_with_retry, whose
// bounded reconnect-and-resend attempts are what turn a 1% connection-kill
// rate into ~100% goodput.
//
// Cases: 1, 4 and 8 concurrent clients (the canonical scenario is the
// 8-client case). Every successful response is verified byte-for-byte
// against the encoding precomputed from direct in-process FleetEngine
// calls — a chaos fault may kill a frame (EOF, retried) but must never
// corrupt one, so a single divergent byte fails the bench. A separate
// reproducibility probe solves the canonical degraded request at 1 and 8
// shard workers and requires bit-identical bytes, and a final `health`
// probe must report exactly the two declared shards as down.
//
// Targets (CI gate): goodput >= 95% in every case, zero mismatched
// response bytes, at least one injected drop actually fired, the degraded
// plan reproduces bit-for-bit, and health sees both down shards. Emits
// BENCH_chaos.json (goodput, fired-fault counts, retry histogram); exits
// nonzero on a miss.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/synthetic.h"
#include "fleet/fleet_engine.h"
#include "obs/json_writer.h"
#include "obs/obs.h"
#include "obs/session.h"
#include "service/chaos.h"
#include "service/client.h"
#include "service/server.h"
#include "service/wire.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

using namespace coolopt;

namespace {

constexpr size_t kPoints = 40;  ///< distinct fleetplan operating points

struct CaseResult {
  size_t clients = 0;
  size_t calls = 0;
  size_t succeeded = 0;
  size_t retried_calls = 0;  ///< calls that needed more than one attempt
  size_t mismatches = 0;     ///< successful responses with divergent bytes
  double goodput_pct = 0.0;
  double wall_s = 0.0;
  std::vector<size_t> attempts_hist;  ///< index = attempts, value = calls
};

/// Extracts N from a response line's leading `{"id":N` (the full-line byte
/// comparison against the expected encoding is the real validation).
bool response_id(const std::string& line, size_t& out) {
  constexpr const char* kPrefix = "{\"id\":";
  if (line.rfind(kPrefix, 0) != 0) return false;
  out = static_cast<size_t>(std::strtoull(line.c_str() + 6, nullptr, 10));
  return true;
}

CaseResult run_case(uint16_t port, size_t clients, size_t calls_per_client,
                    int attempts,
                    const std::vector<service::WireRequest>& requests,
                    const std::vector<std::string>& expected_lines) {
  CaseResult result;
  result.clients = clients;
  result.attempts_hist.assign(static_cast<size_t>(attempts) + 1, 0);
  std::atomic<size_t> succeeded{0};
  std::atomic<size_t> retried{0};
  std::atomic<size_t> mismatches{0};
  std::vector<std::vector<size_t>> hists(
      clients, std::vector<size_t>(static_cast<size_t>(attempts) + 1, 0));

  auto client_main = [&](size_t index) {
    service::ServiceClient client;
    client.set_timeout_ms(10000);
    if (!client.connect("127.0.0.1", port)) return;  // counted as failures
    service::ServiceClient::RetryPolicy policy;
    policy.attempts = attempts;
    policy.base_backoff_ms = 1;
    policy.max_backoff_ms = 8;
    policy.seed = 100 + index;  // per-client deterministic jitter stream
    for (size_t i = 0; i < calls_per_client; ++i) {
      const size_t point = (index * calls_per_client + i) % kPoints;
      // Fresh connection per call: every call is an accept, so the drop
      // hook gets full exposure (call_with_retry reconnects on its own).
      client.close();
      const std::optional<std::string> response =
          client.call_with_retry(requests[point], policy);
      if (client.last_attempts() > 1) retried.fetch_add(1);
      const size_t used = static_cast<size_t>(
          std::clamp(client.last_attempts(), 1, attempts));
      ++hists[index][used];
      if (!response.has_value()) continue;
      size_t echoed = 0;
      if (!response_id(*response, echoed) || echoed >= kPoints ||
          *response != expected_lines[echoed]) {
        // A chaos fault may kill a frame; it must never corrupt one.
        mismatches.fetch_add(1);
        continue;
      }
      succeeded.fetch_add(1);
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t i = 0; i < clients; ++i) threads.emplace_back(client_main, i);
  for (std::thread& t : threads) t.join();
  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  result.calls = clients * calls_per_client;
  result.succeeded = succeeded.load();
  result.retried_calls = retried.load();
  result.mismatches = mismatches.load();
  result.goodput_pct =
      result.calls > 0
          ? 100.0 * static_cast<double>(result.succeeded) /
                static_cast<double>(result.calls)
          : 0.0;
  for (const std::vector<size_t>& h : hists) {
    for (size_t a = 0; a < h.size(); ++a) result.attempts_hist[a] += h[a];
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsSession obs_session(argc, argv);
  util::CliFlags flags;
  flags.define("json-out", "machine-readable results path", "BENCH_chaos.json");
  flags.define("machines", "synthetic fleet size (split across shards)", "64");
  flags.define("shards", "fleet shard count", "8");
  flags.define("calls", "fleetplan calls per case (split across clients)",
               "600");
  flags.define("drop-pct", "chaos connection-drop probability, percent", "1");
  flags.define("chaos-seed", "chaos fault-stream seed", "17");
  flags.define("retries", "retry attempts per call", "6");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("cooloptd chaos campaign").c_str());
    return 0;
  }
  const size_t machines = static_cast<size_t>(flags.get_int("machines", 64));
  const size_t shards = static_cast<size_t>(std::max(2, flags.get_int("shards", 8)));
  const size_t total_calls = static_cast<size_t>(flags.get_int("calls", 600));
  const double drop_pct = std::max(0.0, flags.get_double("drop-pct", 1.0));
  const uint64_t chaos_seed =
      static_cast<uint64_t>(std::max(0, flags.get_int("chaos-seed", 17)));
  const int attempts = std::max(1, flags.get_int("retries", 6));
  // The canonical degraded fleet: 2 of `shards` down for every request.
  const std::vector<size_t> down_shards = {2, shards > 5 ? 5 : shards - 1};

  // Model-backed fleet service with the connection-drop chaos hook armed;
  // the same FleetEngine answers the direct calls the expected bytes come
  // from, so byte comparison is exact.
  core::SyntheticModelOptions model_options;
  model_options.machines = machines;
  model_options.seed = 7;
  service::ServiceConfig config;
  config.model = core::share_model(core::make_synthetic_model(model_options));
  config.fleet_shards = shards;
  config.max_connections = 128;
  config.chaos.seed = chaos_seed;
  config.chaos.drop_connection_pct = drop_pct;
  service::PlanningService server(std::move(config));
  server.start();

  // kPoints distinct degraded fleetplan requests and their exact expected
  // bytes from direct in-process FleetEngine calls. Requests round-trip
  // through parse_request so the bench plans from the same parsed doubles
  // the server sees. Loads stay below the survivors' capacity (6/8 of the
  // fleet) so the redistribution is absorbed, not shed.
  std::vector<service::WireRequest> requests(kPoints);
  std::vector<std::string> expected_lines(kPoints);
  const double capacity = server.info().capacity_files_s;
  constexpr int kScenarios[] = {1, 2, 3, 4, 5, 7};  // closed-form paths
  for (size_t i = 0; i < kPoints; ++i) {
    service::WireRequest request;
    request.id = i;
    request.verb = service::Verb::kFleetplan;
    request.priority = service::Priority::kHigh;
    request.scenario = kScenarios[i % (sizeof kScenarios / sizeof *kScenarios)];
    request.load_pct =
        60.0 * static_cast<double>(i + 1) / static_cast<double>(kPoints);
    request.down_shards = down_shards;

    service::WireRequest parsed;
    std::string parse_error;
    if (!service::parse_request(service::encode_request(request), parsed,
                                parse_error)) {
      std::fprintf(stderr, "self-check: %s\n", parse_error.c_str());
      return 2;
    }
    requests[i] = parsed;
    fleet::FleetPlanRequest fleet_request;
    fleet_request.scenario = core::Scenario::by_number(parsed.scenario);
    fleet_request.load = parsed.load_pct / 100.0 * capacity;
    fleet_request.down_shards = parsed.down_shards;
    expected_lines[i] = service::encode_fleetplan_response(
        parsed.id, server.fleet_engine()->solve(fleet_request));
  }

  // Reproducibility probe: the same degraded solve at 1 and 8 shard
  // workers must produce bit-identical bytes (worker count and cache
  // temperature cannot change a degraded plan).
  fleet::FleetPlanRequest canonical;
  canonical.scenario = core::Scenario::by_number(requests[kPoints - 1].scenario);
  canonical.load = requests[kPoints - 1].load_pct / 100.0 * capacity;
  canonical.down_shards = down_shards;
  const std::string serial_bytes = service::encode_fleetplan_response(
      1, server.fleet_engine()->solve(canonical, 1));
  const std::string parallel_bytes = service::encode_fleetplan_response(
      1, server.fleet_engine()->solve(canonical, 8));
  const bool reproducible = serial_bytes == parallel_bytes;

  std::printf("cooloptd chaos campaign (%zu machines / %zu shards, shards "
              "%zu+%zu down, %.1f%% connection drops, seed %llu, %d "
              "attempts)\n\n",
              machines, shards, down_shards[0], down_shards[1], drop_pct,
              static_cast<unsigned long long>(chaos_seed), attempts);

  const std::vector<size_t> client_counts = {1, 4, 8};
  std::vector<CaseResult> results;
  for (const size_t clients : client_counts) {
    const size_t per_client = std::max<size_t>(1, total_calls / clients);
    results.push_back(run_case(server.port(), clients, per_client, attempts,
                               requests, expected_lines));
  }

  // End-to-end health: after the campaign the probe plane must still
  // answer and report exactly the declared shards as down.
  size_t health_shards_down = 0;
  bool health_ok = false;
  {
    service::ServiceClient probe;
    probe.set_timeout_ms(10000);
    service::WireRequest health;
    health.id = 9001;
    health.verb = service::Verb::kHealth;
    service::ServiceClient::RetryPolicy policy;
    policy.attempts = attempts;
    policy.base_backoff_ms = 1;
    policy.max_backoff_ms = 8;
    if (probe.connect("127.0.0.1", server.port())) {
      const std::optional<std::string> response =
          probe.call_with_retry(health, policy);
      if (response.has_value()) {
        health_ok = response->find("\"ok\":true") != std::string::npos;
        std::string::size_type at = 0;
        while ((at = response->find("\"status\":\"down\"", at)) !=
               std::string::npos) {
          ++health_shards_down;
          at += 1;
        }
      }
    }
  }

  const service::ChaosInjector::Counters fired = server.chaos()->counters();
  server.stop();

  util::TextTable table({"clients", "calls", "goodput", "retried",
                         "mismatches", "wall (s)"});
  bool pass = reproducible && health_ok &&
              health_shards_down == down_shards.size() &&
              fired.dropped_connections > 0;
  std::vector<size_t> attempts_hist(static_cast<size_t>(attempts) + 1, 0);
  size_t total_retried = 0;
  for (const CaseResult& r : results) {
    table.row({util::strf("%zu", r.clients), util::strf("%zu", r.calls),
               util::strf("%.2f%%", r.goodput_pct),
               util::strf("%zu", r.retried_calls),
               util::strf("%zu", r.mismatches), util::strf("%.2f", r.wall_s)});
    if (r.goodput_pct < 95.0 || r.mismatches != 0) pass = false;
    for (size_t a = 0; a < attempts_hist.size(); ++a) {
      attempts_hist[a] += r.attempts_hist[a];
    }
    total_retried += r.retried_calls;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("faults fired: %llu connections dropped; retry absorbed %zu "
              "call(s); degraded plan reproducible: %s; health reports "
              "%zu/%zu down shards\n\n",
              static_cast<unsigned long long>(fired.dropped_connections),
              total_retried, reproducible ? "yes" : "NO",
              health_shards_down, down_shards.size());

  const std::string json_path = flags.get_string("json-out", "BENCH_chaos.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 2;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "chaos");
  w.kv("machines", static_cast<uint64_t>(machines));
  w.kv("shards", static_cast<uint64_t>(shards));
  w.kv("shards_down", static_cast<uint64_t>(down_shards.size()));
  w.kv("drop_connection_pct", drop_pct);
  w.kv("chaos_seed", chaos_seed);
  w.kv("retry_attempts", static_cast<uint64_t>(attempts));
  w.key("cases");
  w.begin_array();
  for (const CaseResult& r : results) {
    w.begin_object();
    w.kv("n", static_cast<uint64_t>(r.clients));
    w.kv("clients", static_cast<uint64_t>(r.clients));
    w.kv("calls", static_cast<uint64_t>(r.calls));
    w.kv("succeeded", static_cast<uint64_t>(r.succeeded));
    w.kv("goodput_pct", r.goodput_pct);
    w.kv("retried_calls", static_cast<uint64_t>(r.retried_calls));
    w.kv("mismatches", static_cast<uint64_t>(r.mismatches));
    w.kv("wall_s", r.wall_s);
    w.end_object();
  }
  w.end_array();
  // Canonical goodput is the 8-client case (the last, largest case).
  w.kv("goodput_pct", results.back().goodput_pct);
  w.key("drops");
  w.begin_object();
  w.kv("dropped_connections", fired.dropped_connections);
  w.kv("delayed_reads", fired.delayed_reads);
  w.kv("truncated_writes", fired.truncated_writes);
  w.kv("stalled_solves", fired.stalled_solves);
  w.end_object();
  w.key("retry_histogram");
  w.begin_array();
  for (size_t a = 1; a < attempts_hist.size(); ++a) {
    if (attempts_hist[a] == 0 && a > 1) continue;
    w.begin_object();
    w.kv("attempts", static_cast<uint64_t>(a));
    w.kv("calls", static_cast<uint64_t>(attempts_hist[a]));
    w.end_object();
  }
  w.end_array();
  w.kv("reproducible", reproducible);
  w.kv("health_shards_down", static_cast<uint64_t>(health_shards_down));
  w.kv("pass", pass);
  w.end_object();
  out << "\n";
  std::printf("(JSON written to %s)\n", json_path.c_str());

  std::printf("Targets (goodput >= 95%% per case; zero mismatched bytes; "
              ">= 1 drop fired; reproducible degraded plan; health sees "
              "both down shards): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
