// Extra: the energy cost of the temperature ceiling, and a ground-truth
// check of the paper's shadow prices (Eqs. 15-16).
//
// Operators pick T_max; the closed form says each degree of relaxation on
// machine i is worth mu_i watts, i.e. relaxing every ceiling together is
// worth sum(mu_i) per degree. This bench sweeps T_max on the *simulator*
// (not the model), measures the holistic method's power at a fixed load,
// and compares the measured slope dP/dT_max against the model's sum(mu) —
// the kind of cross-validation only possible because the testbed stand-in
// is independent of the optimizer.

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/closed_form.h"
#include "control/setpoint_planner.h"

using namespace coolopt;

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Extra: total power vs the CPU temperature ceiling (scenario #8, "
              "65%% load)\n\n");

  // Profile once; the ceiling is an operator constraint applied afterwards.
  sim::MachineRoom room(benchsup::standard_options().room);
  const auto profile =
      profiling::profile_room(room, profiling::ProfilingOptions::fast());
  const control::SetPointPlanner sp =
      control::SetPointPlanner::from_profile(profile.cooler);

  const double load = profile.model.total_capacity() * 0.65;
  const std::vector<double> ceilings = {45.0, 46.0, 47.0, 48.0, 49.0, 50.0};

  util::TextTable out({"T_max (C)", "measured power (W)", "machines ON",
                       "T_ac achieved (C)", "model sum(mu) (W/K)"});
  std::vector<double> powers;
  std::vector<double> sum_mus;
  for (const double t_max : ceilings) {
    core::RoomModel model = profile.model;
    model.t_max = t_max;
    const core::ScenarioPlanner planner(model, core::PlannerOptions{1.0});
    control::ExperimentRunner runner(room, sp, model);
    const auto plan = planner.plan(core::Scenario::by_number(8), load);
    if (!plan) {
      out.row({util::strf("%.0f", t_max), "infeasible", "-", "-", "-"});
      powers.push_back(-1.0);
      sum_mus.push_back(0.0);
      continue;
    }
    const auto m = runner.run(*plan);
    powers.push_back(m.total_power_w);

    // Model-side marginal: sum of mu over the chosen ON set (margined model,
    // as the planner solves it).
    core::RoomModel margined = model;
    margined.t_max -= 1.0;
    std::vector<size_t> on_set;
    for (size_t i = 0; i < model.size(); ++i) {
      if (plan->allocation.on[i]) on_set.push_back(i);
    }
    double sum_mu = 0.0;
    const core::AnalyticOptimizer analytic(margined);
    const auto cf = analytic.solve(on_set, load);
    for (const size_t i : on_set) sum_mu += cf.mu[i];
    sum_mus.push_back(sum_mu);

    out.row({util::strf("%.0f", t_max), util::strf("%.0f", m.total_power_w),
             util::strf("%zu", m.machines_on),
             util::strf("%.2f", m.t_ac_achieved_c), util::strf("%.1f", sum_mu)});
  }
  std::printf("%s\n", out.render().c_str());

  // Shape: power is non-increasing in the ceiling (a looser constraint can
  // never cost energy), and the measured slope has the magnitude the model's
  // shadow prices predict (within a factor ~3: the model's cfac is a
  // linearization and the ON set changes along the sweep).
  bool monotone = true;
  for (size_t i = 1; i < powers.size(); ++i) {
    if (powers[i] < 0.0 || powers[i - 1] < 0.0) continue;
    if (powers[i] > powers[i - 1] + 8.0) monotone = false;  // noise allowance
  }
  const double measured_slope =
      (powers.front() - powers.back()) / (ceilings.back() - ceilings.front());
  const double mean_mu = benchsup::saving_pct(1.0, 1.0) * 0.0 +
                         (sum_mus.front() + sum_mus.back()) / 2.0;
  std::printf("Measured dP/dT_max ~= %.1f W/K; model's sum(mu) ~= %.1f W/K\n",
              measured_slope, mean_mu);

  const bool pass = monotone && measured_slope > 0.0 &&
                    measured_slope < 3.0 * mean_mu &&
                    measured_slope > mean_mu / 3.0;
  std::printf("\nShape check (power non-increasing in T_max; measured marginal "
              "within 3x of the Eq. 15 shadow prices): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
