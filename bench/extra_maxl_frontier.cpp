// Extra: the maxL(A, P_b, k) capacity frontier of Section III-B.
//
// The paper's consolidation proof runs through an auxiliary question —
// "with a given power budget P_b and exactly k servers, what is the
// maximum load the cluster can serve?" — which is also the capacity-
// planning question of the related work it cites (Gandhi et al., power
// budgeting). This bench prints the frontier: servable load vs electric
// budget for several fleet sizes, and checks its structural properties
// (monotone in budget, monotone in k until the idle cost dominates).

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/consolidation.h"

using namespace coolopt;

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("maxL frontier: servable load (files/s) vs power budget, "
              "exactly-k machines\n\n");

  control::EvalHarness harness(benchsup::standard_options());
  const core::EventConsolidator consolidator(harness.model());

  const std::vector<double> budgets = {400, 700, 1000, 1400, 1900, 2500};
  const std::vector<size_t> ks = {4, 8, 12, 16, 20};

  std::vector<std::string> columns{"budget (W)"};
  for (const size_t k : ks) columns.push_back(util::strf("k=%zu", k));
  util::TextTable out(columns);

  bool monotone_budget = true;
  std::vector<double> prev_row(ks.size(), -1.0);
  for (const double budget : budgets) {
    std::vector<std::string> row{util::strf("%.0f", budget)};
    for (size_t j = 0; j < ks.size(); ++j) {
      const double l_max = consolidator.max_load_for_budget(budget, ks[j]);
      if (l_max < prev_row[j] - 1e-6) monotone_budget = false;
      prev_row[j] = l_max;
      row.push_back(l_max > 0.0 ? util::strf("%.0f", l_max) : std::string("-"));
    }
    out.row(std::move(row));
  }
  std::printf("%s\n", out.render().c_str());

  // Spot checks: at a generous budget more machines serve more; at a tight
  // budget a small fleet beats a big one (idle power eats the budget).
  const double big_budget = 2500.0;
  const double small_k = consolidator.max_load_for_budget(big_budget, 4);
  const double large_k = consolidator.max_load_for_budget(big_budget, 20);
  const double tight_budget = 400.0;
  const double tight_small = consolidator.max_load_for_budget(tight_budget, 4);
  const double tight_large = consolidator.max_load_for_budget(tight_budget, 20);

  std::printf("At %.0f W: k=4 serves %.0f, k=20 serves %.0f (capacity wins).\n",
              big_budget, small_k, large_k);
  std::printf("At %.0f W: k=4 serves %.0f, k=20 serves %.0f (idle draw "
              "eats the tight budget).\n",
              tight_budget, tight_small, tight_large);

  const bool pass = monotone_budget && large_k > small_k && tight_small > tight_large;
  std::printf("\nShape check (monotone in budget; k-tradeoff flips between "
              "tight and generous budgets): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
