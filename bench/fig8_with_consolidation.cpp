// Reproduces Fig. 8: load-distribution strategies under AC control WITH
// consolidation (#7 Bottom-up, #8 Optimal, plus the even-split-with-
// consolidation variant the figure's legend shows).
//
// Paper shape: "with optimal load allocation, 5% saving in total energy
// consumption is possible. ... The energy savings under the optimal load
// allocation were relatively consistent for different loads."

#include <cstdio>

#include "bench/common.h"

using namespace coolopt;

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Fig. 8 reproduction: Even vs Bottom-up vs Optimal "
              "(AC control + consolidation)\n\n");

  control::EvalHarness harness(benchsup::standard_options());
  // The unnumbered Even+AC+consolidation combination from the figure legend.
  const core::Scenario even_consol{0, core::Distribution::kEven, true, true};
  const std::vector<core::Scenario> scenarios = {
      even_consol, core::Scenario::by_number(7), core::Scenario::by_number(8)};
  const auto table =
      benchsup::run_sweep(harness, scenarios, control::paper_load_axis());

  benchsup::print_power_table(table, "Measured total power (W):");
  benchsup::maybe_export_csv(table, "fig8_with_consolidation");

  util::TextTable savings({"load %", "#8 vs Even+consol (%)", "#8 vs #7 (%)"});
  bool pass = true;
  double peak_saving = 0.0;
  for (const double pct : table.loads) {
    const double pe = table.at(0, pct).measurement.total_power_w;
    const double p7 = table.at(7, pct).measurement.total_power_w;
    const double p8 = table.at(8, pct).measurement.total_power_w;
    const double s7 = benchsup::saving_pct(p7, p8);
    savings.labeled_row(util::strf("%.0f", pct),
                        {benchsup::saving_pct(pe, p8), s7}, "%.1f");
    peak_saving = std::max(peak_saving, s7);
    if (p8 > p7 * 1.005 || p8 > pe * 1.005) pass = false;
  }
  std::printf("%s", savings.render().c_str());

  // Paper: ~5% total-energy saving possible under consolidation.
  pass = pass && peak_saving >= 5.0;
  std::printf("\nShape check (Optimal <= both baselines at every load; peak "
              "saving vs #7 >= 5%%): %s (peak %.1f%%)\n",
              pass ? "PASS" : "FAIL", peak_saving);
  return pass ? 0 : 1;
}
