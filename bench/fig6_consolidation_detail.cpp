// Reproduces Fig. 6: the consolidation benefit in detail as a function of
// total load.
//
// Paper shape: "consolidation gives the most benefit when the load on the
// data center is low. The benefit gradually diminishes when load increases,
// since the number of powered-off servers decreases as the load increases."

#include <cstdio>

#include "bench/common.h"

using namespace coolopt;

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Fig. 6 reproduction: consolidation benefit vs load\n\n");

  control::EvalHarness harness(benchsup::standard_options());
  const std::vector<core::Scenario> scenarios = {
      core::Scenario::by_number(5), core::Scenario::by_number(7),
      core::Scenario::by_number(6), core::Scenario::by_number(8),
  };
  const auto table =
      benchsup::run_sweep(harness, scenarios, control::paper_load_axis());

  util::TextTable out({"load %", "#5 power (W)", "#7 power (W)", "machines off",
                       "saving (W)", "saving (%)", "#6 vs #8 saving (%)"});
  std::vector<double> savings;
  for (const double pct : table.loads) {
    const auto& p5 = table.at(5, pct).measurement;
    const auto& p7 = table.at(7, pct).measurement;
    const auto& p6 = table.at(6, pct).measurement;
    const auto& p8 = table.at(8, pct).measurement;
    const double saving_w = p5.total_power_w - p7.total_power_w;
    const double saving_pct = 100.0 * saving_w / p5.total_power_w;
    savings.push_back(saving_pct);
    out.row({util::strf("%.0f", pct), util::strf("%.0f", p5.total_power_w),
             util::strf("%.0f", p7.total_power_w),
             util::strf("%zu", harness.model().size() - p7.machines_on),
             util::strf("%.0f", saving_w), util::strf("%.1f", saving_pct),
             util::strf("%.1f", benchsup::saving_pct(p6.total_power_w,
                                                     p8.total_power_w))});
  }
  std::printf("%s", out.render().c_str());
  benchsup::maybe_export_csv(table, "fig6_consolidation_detail");

  // Shape: benefit is largest at the lowest load and ~0 at 100 %, with a
  // broadly diminishing trend (allow small non-monotone steps from the
  // integer machine counts).
  bool pass = savings.front() >= 30.0 && savings.back() <= 2.0 &&
              savings.front() > savings[savings.size() / 2] &&
              savings[savings.size() / 2] > savings.back();
  std::printf("\nShape check (benefit largest at low load, vanishing at 100%%): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
