// Ablation: how the holistic method's advantage scales with room size.
//
// The paper's introduction and conclusion both predict it: "We expect that
// savings in larger systems will be more pronounced, as larger spatial
// diversity gives rise to more opportunities for optimization." We sweep
// the fleet size (CRAC and room envelope scaled proportionally, so the
// per-server physics stays comparable) and measure #8 vs #7.

#include <cstdio>

#include "bench/common.h"

using namespace coolopt;

namespace {

control::HarnessOptions scaled_room(size_t n) {
  control::HarnessOptions options = benchsup::standard_options();
  options.room.num_servers = n;
  const double scale = static_cast<double>(n) / 20.0;
  options.room.crac.flow_m3s *= scale;
  options.room.crac.max_cooling_w *= scale;
  options.room.crac.fan_power_w *= scale;
  options.room.wall_conductance_w_k *= scale;
  options.room.ambient_heat_capacity *= scale;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Ablation: holistic advantage vs room size\n");
  std::printf("(CRAC flow/capacity and envelope scaled with the fleet)\n\n");

  const std::vector<size_t> sizes = {10, 20, 40, 80};
  const std::vector<double> loads = {30, 50, 70, 90};
  util::TextTable out({"servers", "avg #7 (W)", "avg #8 (W)", "avg saving (%)",
                       "best saving (%)", "violations"});

  std::vector<double> savings;
  for (const size_t n : sizes) {
    control::EvalHarness harness(scaled_room(n));
    const auto table = benchsup::run_sweep(
        harness, {core::Scenario::by_number(7), core::Scenario::by_number(8)},
        loads);
    double sum7 = 0.0;
    double sum8 = 0.0;
    double best = 0.0;
    size_t violations = 0;
    for (const double pct : loads) {
      const auto& p7 = table.at(7, pct);
      const auto& p8 = table.at(8, pct);
      sum7 += p7.measurement.total_power_w;
      sum8 += p8.measurement.total_power_w;
      best = std::max(best, benchsup::saving_pct(p7.measurement.total_power_w,
                                                 p8.measurement.total_power_w));
      violations += p7.measurement.temp_violation + p8.measurement.temp_violation;
    }
    const double avg = benchsup::saving_pct(sum7, sum8);
    savings.push_back(avg);
    out.row({util::strf("%zu", n), util::strf("%.0f", sum7 / loads.size()),
             util::strf("%.0f", sum8 / loads.size()), util::strf("%.1f", avg),
             util::strf("%.1f", best), util::strf("%zu", violations)});
  }
  std::printf("%s", out.render().c_str());

  const bool pass = savings.back() >= savings.front() - 0.5 && savings.back() >= 3.0;
  std::printf("\nShape check (savings sustained or growing with room size): %s "
              "(%.1f%% at n=%zu -> %.1f%% at n=%zu)\n",
              pass ? "PASS" : "FAIL", savings.front(), sizes.front(),
              savings.back(), sizes.back());
  return pass ? 0 : 1;
}
