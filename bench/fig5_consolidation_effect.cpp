// Reproduces Fig. 5: comparison of matched methods with and without
// consolidation (Bottom-up: #2 vs #3 and #5 vs #7; Optimal: #6 vs #8).
//
// Paper shape: "the addition of consolidation substantially increases total
// energy savings"; the consolidated variant of each method draws strictly
// less power below full load and converges to its unconsolidated twin at
// 100%.

#include <cstdio>

#include "bench/common.h"

using namespace coolopt;

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Fig. 5 reproduction: matched methods with vs without consolidation\n\n");

  control::EvalHarness harness(benchsup::standard_options());
  const std::vector<core::Scenario> scenarios = {
      core::Scenario::by_number(2), core::Scenario::by_number(3),
      core::Scenario::by_number(5), core::Scenario::by_number(7),
      core::Scenario::by_number(6), core::Scenario::by_number(8),
  };
  const auto table =
      benchsup::run_sweep(harness, scenarios, control::paper_load_axis());

  benchsup::print_power_table(table, "Measured total power (W):");
  benchsup::maybe_export_csv(table, "fig5_consolidation_effect");

  std::printf("Consolidation saving per pair (%% of the unconsolidated twin):\n");
  util::TextTable savings({"load %", "#2 vs #3", "#5 vs #7", "#6 vs #8"});
  bool pass = true;
  for (const double pct : table.loads) {
    const double s23 = benchsup::saving_pct(
        table.at(2, pct).measurement.total_power_w,
        table.at(3, pct).measurement.total_power_w);
    const double s57 = benchsup::saving_pct(
        table.at(5, pct).measurement.total_power_w,
        table.at(7, pct).measurement.total_power_w);
    const double s68 = benchsup::saving_pct(
        table.at(6, pct).measurement.total_power_w,
        table.at(8, pct).measurement.total_power_w);
    savings.labeled_row(util::strf("%.0f", pct), {s23, s57, s68}, "%.1f");
    if (pct <= 50.0 && (s23 < 5.0 || s57 < 5.0 || s68 < 5.0)) pass = false;
    if (pct >= 100.0 && (s23 < -0.5 || s57 < -0.5 || s68 < -0.5)) pass = false;
  }
  std::printf("%s", savings.render().c_str());

  std::printf("\nShape check (substantial savings at low load, convergence at "
              "100%%): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
