// Algorithm performance for Section III-B: Algorithm 1's O(n^3 lg n)
// offline preprocessing, Algorithm 2's O(lg n) online query (paper mode) vs
// the exact per-k query (O(n lg n)) vs the naive O(n 2^n) enumeration the
// paper argues against.

#include <benchmark/benchmark.h>

#include "core/consolidation.h"
#include "core/synthetic.h"
#include "obs/session.h"

using namespace coolopt;

namespace {

core::RoomModel model_of_size(size_t n) {
  core::SyntheticModelOptions options;
  options.machines = n;
  options.seed = 11;
  return core::make_synthetic_model(options);
}

void BM_Algorithm1Preprocess(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::RoomModel model = model_of_size(n);
  for (auto _ : state) {
    core::EventConsolidator consolidator(model);
    benchmark::DoNotOptimize(consolidator.status_count());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Algorithm1Preprocess)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_Algorithm2QueryPaper(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::RoomModel model = model_of_size(n);
  const core::EventConsolidator consolidator(model);
  const double load = model.total_capacity() * 0.4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(consolidator.query(
        load, core::EventConsolidator::QueryMode::kPaperBinarySearch));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Algorithm2QueryPaper)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_QueryExactPerK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::RoomModel model = model_of_size(n);
  const core::EventConsolidator consolidator(model);
  const double load = model.total_capacity() * 0.4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        consolidator.query(load, core::EventConsolidator::QueryMode::kExactPerK));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_QueryExactPerK)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_BruteForceNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::RoomModel model = model_of_size(n);
  const core::BruteForceConsolidator brute(model);
  const double load = model.total_capacity() * 0.4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(brute.best(load));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_BruteForceNaive)->DenseRange(8, 18, 2)->Complexity();

void BM_RankAllKInto(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::RoomModel model = model_of_size(n);
  const core::EventConsolidator consolidator(model);
  const double load = model.total_capacity() * 0.4;
  // Grow-only ranking buffer reused across iterations — the engine's warm
  // candidate-walk call shape, vs the allocating rank_all_k().
  std::vector<core::ConsolidationChoice> ranked;
  for (auto _ : state) {
    benchmark::DoNotOptimize(consolidator.rank_all_k_into(load, ranked));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_RankAllKInto)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_MaxLoadForBudget(benchmark::State& state) {
  const core::RoomModel model = model_of_size(64);
  const core::EventConsolidator consolidator(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(consolidator.max_load_for_budget(2000.0, 24));
  }
}
BENCHMARK(BM_MaxLoadForBudget);

}  // namespace

// Like BENCHMARK_MAIN(), but peels off --metrics-out/--trace-out first so
// the perf suites can export telemetry (benchmark::Initialize rejects flags
// it does not know about).
int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
