// Reproduces Fig. 3: measured vs predicted stable CPU temperature for one
// server across the (cooling set point x load) profiling grid, fitting the
// per-machine linear model of Eq. 8.
//
// Paper shape: "while not perfect, the linear model was able to predict
// (with a few percent error) the stable temperature of the server's CPU" —
// we check a worst-case error under ~2 C (a few percent of the 25-50 C
// operating range) and report every machine's fit quality.

#include <cstdio>
#include <cstdlib>

#include "bench/common.h"
#include "profiling/thermal_profiler.h"

using namespace coolopt;

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Fig. 3 reproduction: measured vs predicted stable CPU temperature\n\n");

  sim::MachineRoom room(benchsup::standard_options().room);
  profiling::ThermalProfilerOptions options;  // full grid
  const auto result = profiling::profile_thermal(room, options, /*traced_server=*/5);

  std::printf("Per-machine fits of Eq. 8 (T_cpu = alpha*T_ac + beta*P + gamma):\n");
  util::TextTable fits({"machine", "alpha", "beta", "gamma", "R^2", "RMSE (C)",
                        "max |err| (C)"});
  double worst_err = 0.0;
  for (size_t i = 0; i < result.fits.size(); ++i) {
    const auto& f = result.fits[i];
    fits.row({util::strf("%zu", i), util::strf("%.3f", f.coeffs.alpha),
              util::strf("%.4f", f.coeffs.beta), util::strf("%.2f", f.coeffs.gamma),
              util::strf("%.4f", f.r_squared), util::strf("%.2f", f.rmse_c),
              util::strf("%.2f", f.max_abs_err_c)});
    worst_err = std::max(worst_err, f.max_abs_err_c);
  }
  std::printf("%s\n", fits.render().c_str());

  std::printf("Fig. 3 series (server 5), one row per grid point:\n");
  util::TextTable series({"T_ac (C)", "P (W)", "measured (C)", "predicted (C)"});
  for (size_t s = 0; s < result.trace.sample_count(); ++s) {
    series.row_numeric({result.trace.value(s, 0), result.trace.value(s, 1),
                        result.trace.value(s, 2), result.trace.value(s, 3)});
  }
  std::printf("%s", series.render().c_str());

  const char* dir = std::getenv("COOLOPT_BENCH_CSV_DIR");
  if (dir != nullptr) {
    const std::string path = util::strf("%s/fig3_temp_model.csv", dir);
    result.trace.write_csv(path);
    std::printf("(full series written to %s)\n", path.c_str());
  }

  const bool pass = worst_err <= 2.0;
  std::printf("\nShape check (every machine's max prediction error <= 2 C, \"a "
              "few percent\"): %s (worst %.2f C)\n",
              pass ? "PASS" : "FAIL", worst_err);
  return pass ? 0 : 1;
}
