// Ablation: cooler-model calibration (EXPERIMENTS.md, Finding 1).
//
// The paper fits Eq. 10 (P_ac = cfac*(T_SP - T_ac)) and optimizes against
// it. Regressing measured CRAC power on the measured temperature gap
// yields a slope dominated by heat-load-driven variation, which overstates
// the electric value of warm supply air several-fold; the consolidation
// then over-provisions machines. This bench runs the holistic method (#8)
// against the best baseline (#7) under both calibrations and quantifies
// the damage — and the repair.

#include <cstdio>

#include "bench/common.h"

using namespace coolopt;

namespace {

struct CalibResult {
  double cfac = 0.0;
  double avg_saving_pct = 0.0;
  double worst_saving_pct = 0.0;
  double avg_machines_8 = 0.0;
  double avg_machines_7 = 0.0;
};

CalibResult run(bool operational) {
  control::HarnessOptions options = benchsup::standard_options();
  options.profiling.cooler.operational_fit = operational;
  control::EvalHarness harness(options);
  const std::vector<double> loads = {10, 20, 30, 40, 50, 60, 70, 80, 90};
  const auto table = benchsup::run_sweep(
      harness, {core::Scenario::by_number(7), core::Scenario::by_number(8)},
      loads);

  CalibResult r;
  r.cfac = harness.model().cooler.cfac;
  double sum7 = 0.0;
  double sum8 = 0.0;
  r.worst_saving_pct = 1e9;
  for (const double pct : loads) {
    const double p7 = table.at(7, pct).measurement.total_power_w;
    const double p8 = table.at(8, pct).measurement.total_power_w;
    sum7 += p7;
    sum8 += p8;
    r.worst_saving_pct = std::min(r.worst_saving_pct, benchsup::saving_pct(p7, p8));
    r.avg_machines_7 += static_cast<double>(table.at(7, pct).measurement.machines_on);
    r.avg_machines_8 += static_cast<double>(table.at(8, pct).measurement.machines_on);
  }
  r.avg_saving_pct = benchsup::saving_pct(sum7, sum8);
  r.avg_machines_7 /= static_cast<double>(loads.size());
  r.avg_machines_8 /= static_cast<double>(loads.size());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Ablation: paper-literal vs operational cooler calibration\n\n");

  const CalibResult paper = run(/*operational=*/false);
  const CalibResult operational = run(/*operational=*/true);

  util::TextTable out({"calibration", "fitted cfac (W/K)", "avg #8-on",
                       "avg #7-on", "#8 vs #7 avg (%)", "#8 vs #7 worst (%)"});
  out.row({"paper-literal Eq. 10 slope", util::strf("%.1f", paper.cfac),
           util::strf("%.1f", paper.avg_machines_8),
           util::strf("%.1f", paper.avg_machines_7),
           util::strf("%.1f", paper.avg_saving_pct),
           util::strf("%.1f", paper.worst_saving_pct)});
  out.row({"operational (default)", util::strf("%.1f", operational.cfac),
           util::strf("%.1f", operational.avg_machines_8),
           util::strf("%.1f", operational.avg_machines_7),
           util::strf("%.1f", operational.avg_saving_pct),
           util::strf("%.1f", operational.worst_saving_pct)});
  std::printf("%s\n", out.render().c_str());

  std::printf("The paper-literal slope is %.1fx the operational sensitivity; "
              "under it the holistic method powers %.1f extra machines on "
              "average and its advantage %s.\n",
              paper.cfac / operational.cfac,
              paper.avg_machines_8 - operational.avg_machines_8,
              paper.avg_saving_pct < operational.avg_saving_pct - 0.5
                  ? "shrinks or inverts"
                  : "is largely unchanged");

  const bool pass = paper.cfac > 1.5 * operational.cfac &&
                    operational.avg_saving_pct >= paper.avg_saving_pct - 0.3 &&
                    operational.worst_saving_pct >= -0.5;
  std::printf("\nShape check (literal slope inflated; operational calibration "
              "at least as good and never losing): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
