// Datacenter-scale planning performance: what the sharded FleetEngine and
// the incremental Algorithm 1 table buy as the fleet grows to 10k+
// machines, on SKU-structured rooms (a handful of machine classes
// replicated across slots — the regime real fleets live in, and the one
// where the event table stays compact at any n).
//
// Two timings per case, both COLD (construction included):
//
//   monolithic   one PlanEngine over all n machines: full Algorithm 1
//                preprocess + one consolidated solve;
//   fleet        partition_room(n, shards) + FleetEngine::solve: parallel
//                per-shard preprocess behind the frontier sampling, the
//                water-filling split, parallel shard solves and the merge.
//
// Plus the incremental-vs-rebuild comparison: with a warm table, quarantine
// ONE machine and replan (set_active + query_best) against a from-scratch
// cold build answering the same query at the same active set.
//
// Targets (exit nonzero when missed):
//   * fleet cold solve at n = 10000 beats the monolithic cold solve;
//   * incremental replan >= 10x the cold rebuild at every n >= 2000;
//   * every fleet shard entry is bit-for-bit the shard engine's own
//     answer, and the incremental table/ranking is bit-for-bit the cold
//     rebuild's, at every n.
//
// Emits BENCH_scale.json (override with --json-out); tools/check_bench.sh
// validates the shape of every BENCH_*.json in CI.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/incremental.h"
#include "core/synthetic.h"
#include "fleet/fleet_engine.h"
#include "obs/json_writer.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

using namespace coolopt;

namespace {

/// Operating point: 20% of the (headroom-inflated) nameplate capacity,
/// i.e. 60% of the nominal synthetic capacity — the paper's mid-load
/// regime, far from both the thermal ceiling and the per-machine caps.
constexpr double kLoadFrac = 0.2;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// SKU-structured fleet: `skus` machine classes replicated across n slots,
/// with 3x capacity headroom so per-machine caps don't bind at the 20%
/// operating point below. (When caps bind, the closed form fails bounds
/// and the relaxation lower bound goes slack, so the engine's candidate
/// walk degrades to LP probes over every k — an interesting regime, but
/// not the one this bench sweeps; here both arms run the pruned pure
/// closed-form path and the timing isolates the table/n scaling.)
core::RoomModel sku_model(size_t machines, size_t skus, uint64_t seed) {
  core::SyntheticModelOptions opt;
  opt.machines = machines;
  opt.seed = seed;
  core::RoomModel model = core::make_synthetic_model(opt);
  for (size_t i = skus; i < model.size(); ++i) {
    model.machines[i] = model.machines[i % skus];
  }
  for (core::MachineModel& m : model.machines) m.capacity *= 3.0;
  return model;
}

bool tables_identical(const core::detail::ConsolidationTable& a,
                      const core::detail::ConsolidationTable& b) {
  if (a.events != b.events || a.segments.size() != b.segments.size()) {
    return false;
  }
  for (size_t s = 0; s < a.segments.size(); ++s) {
    if (a.segments[s].start != b.segments[s].start ||
        a.segments[s].order != b.segments[s].order ||
        a.segments[s].prefix_a != b.segments[s].prefix_a ||
        a.segments[s].prefix_b != b.segments[s].prefix_b) {
      return false;
    }
  }
  return true;
}

bool choices_identical(const std::vector<core::ConsolidationChoice>& a,
                       const std::vector<core::ConsolidationChoice>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].k != b[i].k || a[i].on_set != b[i].on_set ||
        a[i].t_ac != b[i].t_ac ||
        a[i].predicted_total_power_w != b[i].predicted_total_power_w) {
      return false;
    }
  }
  return true;
}

struct MonoBaseline {
  double solve_ms = 0.0;
  double total_power_w = 0.0;
};

struct IncrementalResult {
  double replan_ms = 0.0;
  double rebuild_ms = 0.0;
  bool identical = false;
  double speedup() const {
    return replan_ms > 0.0 ? rebuild_ms / replan_ms : 0.0;
  }
};

struct CaseResult {
  size_t n = 0;
  size_t shards = 0;
  double mono_ms = 0.0;
  double fleet_ms = 0.0;
  double mono_power_w = 0.0;
  double fleet_power_w = 0.0;
  bool fleet_identical = false;  ///< shard entries == direct shard solves
  IncrementalResult incremental;
  double fleet_speedup() const {
    return fleet_ms > 0.0 ? mono_ms / fleet_ms : 0.0;
  }
  double power_ratio() const {
    return mono_power_w > 0.0 ? fleet_power_w / mono_power_w : 0.0;
  }
};

/// Cold monolithic reference: construct + one consolidated solve.
MonoBaseline run_monolithic(const core::RoomModel& room, double load) {
  const auto t0 = std::chrono::steady_clock::now();
  core::PlanEngine engine(room);
  const core::PlanResult result =
      engine.solve(core::PlanRequest(core::Scenario::by_number(8), load));
  MonoBaseline mono;
  mono.solve_ms = ms_since(t0);
  mono.total_power_w =
      result.plan ? result.plan->allocation.total_power_w : 0.0;
  return mono;
}

/// Warm table + one-machine quarantine replan (delta patch + query_best)
/// vs a from-scratch build answering the same query.
IncrementalResult run_incremental(const core::SharedRoomModel& model,
                                  double load) {
  IncrementalResult r;
  core::IncrementalConsolidator inc(model, core::kPreValidated);
  std::vector<char> mask(model->size(), 1);
  inc.set_active(mask);  // warm (cold build, untimed)

  mask[model->size() / 2] = 0;  // one machine quarantined
  auto t0 = std::chrono::steady_clock::now();
  inc.set_active(mask);
  const std::optional<core::ConsolidationChoice> best = inc.query_best(load);
  r.replan_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  core::IncrementalConsolidator rebuilt(model, core::kPreValidated);
  rebuilt.set_active(mask);
  const std::optional<core::ConsolidationChoice> best_cold =
      rebuilt.query_best(load);
  r.rebuild_ms = ms_since(t0);

  // Bit-for-bit: the patched table equals the rebuilt one, both queries
  // agree, and query_best is exactly the head of the full ranking.
  const std::vector<core::ConsolidationChoice> ranked = inc.rank_all_k(load);
  r.identical = tables_identical(inc.table(), rebuilt.table()) &&
                best.has_value() && best_cold.has_value() &&
                !ranked.empty() &&
                choices_identical({*best}, {*best_cold}) &&
                choices_identical({*best}, {ranked.front()});
  return r;
}

CaseResult run_case(const core::RoomModel& room, size_t shards,
                    const MonoBaseline& mono,
                    const IncrementalResult& incremental) {
  CaseResult r;
  r.n = room.size();
  r.shards = shards;
  r.mono_ms = mono.solve_ms;
  r.mono_power_w = mono.total_power_w;
  r.incremental = incremental;
  const double load = kLoadFrac * room.total_capacity();

  const auto t0 = std::chrono::steady_clock::now();
  fleet::FleetEngine engine(fleet::partition_room(room, shards));
  fleet::FleetPlanRequest request;
  request.load = load;
  const fleet::FleetPlanResult result = engine.solve(request);
  r.fleet_ms = ms_since(t0);
  r.fleet_power_w = result.total_power_w;

  // Every merged shard entry must be bit-for-bit what that shard's engine
  // answers directly for its assigned load.
  r.fleet_identical = result.feasible();
  for (size_t s = 0; s < shards && r.fleet_identical; ++s) {
    core::PlanRequest direct(request.scenario, result.shard_loads[s]);
    direct.shard = static_cast<int>(s);
    const core::PlanResult again = engine.engine(s).solve(direct);
    const core::PlanResult& merged = result.shard_results[s];
    r.fleet_identical =
        again.plan.has_value() && merged.plan.has_value() &&
        again.plan->allocation.on == merged.plan->allocation.on &&
        again.plan->allocation.loads == merged.plan->allocation.loads &&
        again.plan->allocation.total_power_w ==
            merged.plan->allocation.total_power_w;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  util::CliFlags flags;
  flags.define("json-out", "machine-readable results path", "BENCH_scale.json");
  flags.define("max-n", "largest fleet size in the sweep", "10000");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s",
                flags.usage("datacenter-scale planning performance").c_str());
    return 0;
  }
  const size_t max_n =
      static_cast<size_t>(flags.get_int("max-n", 10000));

  std::printf("Datacenter-scale planning: fleet + incremental Algorithm 1\n\n");

  // n-sweep (ascending, as check_bench asserts) at 8 shards, then the
  // shard-count sweep at the largest n.
  std::vector<std::pair<size_t, size_t>> grid;  // (n, shards)
  for (const size_t n : {size_t{1000}, size_t{2000}, size_t{5000}, max_n}) {
    if (n <= max_n) grid.emplace_back(n, 8);
  }
  for (const size_t shards : {size_t{4}, size_t{16}}) {
    grid.emplace_back(max_n, shards);
  }

  std::vector<CaseResult> results;
  size_t cached_n = 0;
  core::RoomModel room;
  core::SharedRoomModel shared;
  MonoBaseline mono;
  IncrementalResult incremental;
  for (const auto& [n, shards] : grid) {
    if (n != cached_n) {
      room = sku_model(n, 8, 42);
      shared = core::share_model(room);
      const double load = kLoadFrac * room.total_capacity();
      mono = run_monolithic(room, load);
      incremental = run_incremental(shared, load);
      cached_n = n;
    }
    results.push_back(run_case(room, shards, mono, incremental));
  }

  util::TextTable table({"n", "shards", "mono (ms)", "fleet (ms)", "fleet x",
                         "power ratio", "inc (ms)", "rebuild (ms)", "inc x",
                         "identical"});
  bool pass = true;
  bool fleet_wins_at_max = false;
  for (const CaseResult& r : results) {
    table.row({util::strf("%zu", r.n), util::strf("%zu", r.shards),
               util::strf("%.1f", r.mono_ms), util::strf("%.1f", r.fleet_ms),
               util::strf("%.2f", r.fleet_speedup()),
               util::strf("%.4f", r.power_ratio()),
               util::strf("%.2f", r.incremental.replan_ms),
               util::strf("%.1f", r.incremental.rebuild_ms),
               util::strf("%.1f", r.incremental.speedup()),
               (r.fleet_identical && r.incremental.identical) ? "yes" : "NO"});
    if (!r.fleet_identical || !r.incremental.identical) pass = false;
    if (r.n >= 2000 && r.incremental.speedup() < 10.0) pass = false;
    if (r.n == max_n && r.fleet_ms < r.mono_ms) fleet_wins_at_max = true;
  }
  if (!fleet_wins_at_max) pass = false;
  std::printf("%s\n", table.render().c_str());

  const std::string json_path =
      flags.get_string("json-out", "BENCH_scale.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 2;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "scale");
  w.kv("skus", static_cast<uint64_t>(8));
  w.key("cases");
  w.begin_array();
  for (const CaseResult& r : results) {
    w.begin_object();
    w.kv("n", static_cast<uint64_t>(r.n));
    w.kv("shards", static_cast<uint64_t>(r.shards));
    w.kv("mono_ms", r.mono_ms);
    w.kv("fleet_ms", r.fleet_ms);
    w.kv("fleet_speedup", r.fleet_speedup());
    w.kv("power_ratio", r.power_ratio());
    w.kv("incremental_ms", r.incremental.replan_ms);
    w.kv("rebuild_ms", r.incremental.rebuild_ms);
    w.kv("incremental_speedup", r.incremental.speedup());
    w.kv("identical", r.fleet_identical && r.incremental.identical);
    w.end_object();
  }
  w.end_array();
  w.kv("pass", pass);
  w.end_object();
  out << "\n";
  std::printf("(JSON written to %s)\n", json_path.c_str());

  std::printf(
      "Targets (fleet beats monolithic at n = %zu; incremental replan >= "
      "10x the cold rebuild at n >= 2000; everything bit-for-bit): %s\n",
      max_n, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
