// Service-layer performance: sustained request throughput and tail latency
// of an in-process cooloptd (PlanningService) under concurrent clients.
//
// Setup: a model-backed service over a 200-machine synthetic fleet (no
// simulator, so startup is milliseconds and every request exercises the
// planner + wire path, which is what the service layer adds). Requests
// cycle the closed-form scenarios (1-5, 7), whose warm solves are
// microseconds at n=200 — the Optimal-distribution scenarios (6, 8)
// engage the bounded LP at tens of ms per solve on this fleet, which
// would measure planner cost (perf_engine's job), not service overhead.
// Each client thread pipelines a window of requests over its own TCP
// connection across 200 distinct operating points; every response is verified
// byte-for-byte against the expected encoding precomputed from direct
// in-process PlanEngine calls — the bench doubles as a determinism check
// under real socket concurrency.
//
// Cases: 1, 8 and 64 concurrent clients, then a subscriber-overhead phase:
// the 8-client case re-measured with 8 live `subscribe` streams at the
// floor interval. Targets (CI gate): the 8-client case sustains >= 5000
// requests/sec, zero responses diverge from the direct-call bytes at any
// client count, and streaming costs the plan path at most 5% throughput.
// Emits BENCH_service.json with req/s and p50/p99/p999 per case plus the
// subscriber-overhead block; exits nonzero on a miss.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/synthetic.h"
#include "obs/json_writer.h"
#include "obs/obs.h"
#include "obs/session.h"
#include "service/client.h"
#include "service/server.h"
#include "service/wire.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

using namespace coolopt;

namespace {

constexpr size_t kPoints = 200;  ///< distinct (load) operating points

struct CaseResult {
  size_t clients = 0;
  size_t requests = 0;
  size_t mismatches = 0;
  double wall_s = 0.0;
  double req_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_us.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_us.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_us[lo] + (sorted_us[hi] - sorted_us[lo]) * frac;
}

/// Extracts N from a response line's leading `{"id":N` without a full
/// parse (the full-line byte comparison is the real validation).
bool response_id(const std::string& line, size_t& out) {
  constexpr const char* kPrefix = "{\"id\":";
  if (line.rfind(kPrefix, 0) != 0) return false;
  out = static_cast<size_t>(std::strtoull(line.c_str() + 6, nullptr, 10));
  return true;
}

CaseResult run_case(uint16_t port, size_t clients, size_t requests_per_client,
                    size_t window,
                    const std::vector<std::string>& request_lines,
                    const std::vector<std::string>& expected_lines) {
  CaseResult result;
  result.clients = clients;
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};

  auto client_main = [&](size_t index) {
    service::ServiceClient client;
    if (!client.connect("127.0.0.1", port)) {
      failures.fetch_add(1);
      return;
    }
    std::vector<double>& lat = latencies[index];
    lat.reserve(requests_per_client);
    // Send timestamp per point id: the pipeline window (< kPoints) bounds
    // how many ids are in flight, so ids never collide within a window.
    std::vector<std::chrono::steady_clock::time_point> sent(kPoints);
    size_t next = 0;      // next request index to send
    size_t received = 0;  // responses consumed
    while (received < requests_per_client) {
      while (next < requests_per_client && next - received < window) {
        const size_t point = next % kPoints;
        sent[point] = std::chrono::steady_clock::now();
        if (!client.send_line(request_lines[point])) {
          failures.fetch_add(1);
          return;
        }
        ++next;
      }
      const std::optional<std::string> line = client.recv_line();
      if (!line.has_value()) {
        failures.fetch_add(1);
        return;
      }
      size_t point = 0;
      if (!response_id(*line, point) || point >= kPoints ||
          *line != expected_lines[point]) {
        mismatches.fetch_add(1);
      } else {
        lat.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - sent[point])
                          .count());
      }
      ++received;
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t i = 0; i < clients; ++i) threads.emplace_back(client_main, i);
  for (std::thread& t : threads) t.join();
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  result.requests = clients * requests_per_client;
  result.mismatches = mismatches.load() + failures.load() * requests_per_client;
  result.req_per_s =
      result.wall_s > 0.0 ? static_cast<double>(result.requests) / result.wall_s
                          : 0.0;
  std::vector<double> all;
  all.reserve(result.requests);
  for (const std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  result.p50_us = percentile(all, 0.50);
  result.p99_us = percentile(all, 0.99);
  result.p999_us = percentile(all, 0.999);
  return result;
}

/// One telemetry subscriber: subscribes at the floor interval, then counts
/// tick lines until `stop` is raised. Unbounded streams deliver a tick every
/// interval, so the recv loop re-checks the flag at least that often and the
/// thread winds down within roughly one interval of the flag flipping.
void subscriber_main(uint16_t port, uint64_t interval_ms,
                     const std::atomic<bool>& stop,
                     std::atomic<size_t>& ticks_received,
                     std::atomic<size_t>& failures) {
  service::ServiceClient client;
  if (!client.connect("127.0.0.1", port)) {
    failures.fetch_add(1);
    return;
  }
  service::WireRequest request;
  request.id = 1;
  request.verb = service::Verb::kSubscribe;
  request.interval_ms = interval_ms;
  request.ticks = 0;  // unbounded: stream until this client disconnects
  const std::optional<std::string> ack =
      client.call(service::encode_request(request));
  if (!ack.has_value()) {
    failures.fetch_add(1);
    return;
  }
  while (!stop.load(std::memory_order_relaxed)) {
    const std::optional<std::string> line = client.recv_line();
    if (!line.has_value()) return;  // server closed (drain)
    if (line->rfind("{\"verb\":\"telemetry\"", 0) == 0) {
      ticks_received.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

/// Throughput with N live subscribers attached vs. the bare 8-client case.
/// The broadcaster runs on its own thread and delivers through per-session
/// mailboxes, so the gate is that the solve/wire path stays within 5% of
/// the subscriber-free baseline.
struct SubscriberOverhead {
  size_t subscribers = 0;
  uint64_t interval_ms = 0;
  double baseline_req_per_s = 0.0;
  double loaded_req_per_s = 0.0;
  double overhead_pct = 0.0;
  size_t ticks_received = 0;
  size_t mismatches = 0;
  bool pass = false;
};

SubscriberOverhead run_subscriber_overhead(
    uint16_t port, size_t subscribers, uint64_t interval_ms, size_t clients,
    size_t requests_per_client, size_t window,
    const std::vector<std::string>& request_lines,
    const std::vector<std::string>& expected_lines) {
  SubscriberOverhead result;
  result.subscribers = subscribers;
  result.interval_ms = interval_ms;

  // Three alternating (bare, streaming) pairs, judged by the median pair:
  // machine-wide throughput drifts phase to phase on small hosts, and a
  // single pair read during a drift would charge that drift to streaming.
  constexpr size_t kPairs = 3;
  struct Pair {
    double baseline = 0.0;
    double loaded = 0.0;
    double overhead_pct = 0.0;
  };
  std::vector<Pair> pairs;
  pairs.reserve(kPairs);
  for (size_t round = 0; round < kPairs; ++round) {
    const CaseResult baseline =
        run_case(port, clients, requests_per_client, window, request_lines,
                 expected_lines);
    result.mismatches += baseline.mismatches;

    std::atomic<bool> stop{false};
    std::atomic<size_t> ticks{0};
    std::atomic<size_t> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(subscribers);
    for (size_t i = 0; i < subscribers; ++i) {
      threads.emplace_back(subscriber_main, port, result.interval_ms,
                           std::cref(stop), std::ref(ticks),
                           std::ref(failures));
    }
    // Let every subscription receive its baseline tick before measuring, so
    // the measured window is steady-state streaming, not subscribe setup.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<uint64_t>(2 * result.interval_ms, 500)));

    const CaseResult loaded =
        run_case(port, clients, requests_per_client, window, request_lines,
                 expected_lines);
    result.mismatches += loaded.mismatches + failures.load();

    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : threads) t.join();
    result.ticks_received += ticks.load();

    Pair pair;
    pair.baseline = baseline.req_per_s;
    pair.loaded = loaded.req_per_s;
    pair.overhead_pct =
        pair.baseline > 0.0
            ? (pair.baseline - pair.loaded) / pair.baseline * 100.0
            : 100.0;
    pairs.push_back(pair);
  }

  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) {
              return a.overhead_pct < b.overhead_pct;
            });
  const Pair& median = pairs[pairs.size() / 2];
  result.baseline_req_per_s = median.baseline;
  result.loaded_req_per_s = median.loaded;
  result.overhead_pct = median.overhead_pct;
  result.pass = result.mismatches == 0 && result.overhead_pct <= 5.0 &&
                result.ticks_received >= 2 * subscribers;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsSession obs_session(argc, argv);
  // The subscriber phase streams registry deltas; without --metrics-out the
  // session attaches nothing, so keep a bench-local registry attached (same
  // arrangement cooloptd uses) so ticks carry real counter movement.
  obs::MetricsRegistry standalone_registry;
  std::optional<obs::ScopedObservation> standalone_scope;
  if (!obs_session.active()) standalone_scope.emplace(&standalone_registry);
  util::CliFlags flags;
  flags.define("json-out", "machine-readable results path", "BENCH_service.json");
  flags.define("machines", "synthetic fleet size", "200");
  flags.define("requests", "requests per case (split across clients)", "16000");
  flags.define("window", "pipelined requests in flight per client", "32");
  flags.define("subscribers", "telemetry streams in the overhead phase", "8");
  flags.define("sub-interval-ms", "tick interval the overhead phase requests",
               "100");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("cooloptd service performance").c_str());
    return 0;
  }
  const size_t machines = static_cast<size_t>(flags.get_int("machines", 200));
  const size_t total_requests =
      static_cast<size_t>(flags.get_int("requests", 16000));
  const size_t window = std::max(1, flags.get_int("window", 32));
  const size_t subscribers =
      static_cast<size_t>(std::max(1, flags.get_int("subscribers", 8)));
  const uint64_t sub_interval_ms = static_cast<uint64_t>(
      std::max(1, flags.get_int("sub-interval-ms", 100)));

  // Model-backed service over the synthetic fleet; the same shared engine
  // answers the direct calls the expected bytes come from.
  core::SyntheticModelOptions model_options;
  model_options.machines = machines;
  model_options.seed = 7;
  service::ServiceConfig config;
  config.model = core::share_model(core::make_synthetic_model(model_options));
  config.queue_capacity = 4096;  // the bench gates on shed-free admission
  config.max_connections = 128;
  service::PlanningService server(std::move(config));
  server.start();

  // 200 distinct plan requests and, via direct in-process engine calls on
  // the very same PlanEngine, the exact bytes the service must produce.
  // Requests round-trip through parse_request so the bench plans from the
  // same parsed doubles the server sees (%.12g re-parse is exact for
  // round-trippable values; this removes the assumption entirely).
  std::vector<std::string> request_lines(kPoints);
  std::vector<std::string> expected_lines(kPoints);
  const double capacity = server.info().capacity_files_s;
  constexpr int kScenarios[] = {1, 2, 3, 4, 5, 7};  // closed-form paths
  for (size_t i = 0; i < kPoints; ++i) {
    service::WireRequest request;
    request.id = i;
    request.verb = service::Verb::kPlan;
    request.priority = service::Priority::kHigh;
    request.scenario = kScenarios[i % (sizeof kScenarios / sizeof *kScenarios)];
    request.load_pct =
        95.0 * static_cast<double>(i + 1) / static_cast<double>(kPoints);
    request_lines[i] = service::encode_request(request);

    service::WireRequest parsed;
    std::string parse_error;
    if (!service::parse_request(request_lines[i], parsed, parse_error)) {
      std::fprintf(stderr, "self-check: %s\n", parse_error.c_str());
      return 2;
    }
    const core::PlanRequest plan_request(
        core::Scenario::by_number(parsed.scenario),
        parsed.load_pct / 100.0 * capacity, parsed.quarantined);
    expected_lines[i] = service::encode_plan_response(
        parsed.id, server.plan_engine()->solve(plan_request));
  }

  std::printf("cooloptd service performance (%zu-machine synthetic fleet, "
              "%zu workers)\n\n",
              machines, server.info().workers);

  const std::vector<size_t> client_counts = {1, 8, 64};
  std::vector<CaseResult> results;
  for (const size_t clients : client_counts) {
    const size_t per_client = std::max<size_t>(1, total_requests / clients);
    results.push_back(run_case(server.port(), clients, per_client, window,
                               request_lines, expected_lines));
  }

  // Subscriber-overhead phase: the 8-client case re-measured back-to-back,
  // bare and then with 8 live telemetry subscribers at the floor interval.
  constexpr size_t kOverheadClients = 8;
  const SubscriberOverhead overhead = run_subscriber_overhead(
      server.port(), subscribers, sub_interval_ms, kOverheadClients,
      std::max<size_t>(1, total_requests / kOverheadClients), window,
      request_lines, expected_lines);
  server.stop();

  util::TextTable table({"clients", "requests", "req/s", "p50 (us)",
                         "p99 (us)", "p999 (us)", "identical"});
  bool pass = true;
  double req_per_s_8 = 0.0;
  for (const CaseResult& r : results) {
    table.row({util::strf("%zu", r.clients), util::strf("%zu", r.requests),
               util::strf("%.0f", r.req_per_s), util::strf("%.0f", r.p50_us),
               util::strf("%.0f", r.p99_us), util::strf("%.0f", r.p999_us),
               r.mismatches == 0 ? "yes" : util::strf("NO (%zu)", r.mismatches)});
    if (r.mismatches != 0) pass = false;
    if (r.clients == 8) req_per_s_8 = r.req_per_s;
  }
  if (req_per_s_8 < 5000.0) pass = false;
  if (!overhead.pass) pass = false;
  std::printf("%s\n", table.render().c_str());

  std::printf("subscriber overhead, median of 3 pairs (%zu clients, %zu "
              "subscribers @ %llu ms): "
              "%.0f -> %.0f req/s (%+.2f%%), %zu ticks streamed: %s\n\n",
              kOverheadClients, overhead.subscribers,
              static_cast<unsigned long long>(overhead.interval_ms),
              overhead.baseline_req_per_s, overhead.loaded_req_per_s,
              overhead.overhead_pct, overhead.ticks_received,
              overhead.pass ? "PASS" : "FAIL");

  const std::string json_path =
      flags.get_string("json-out", "BENCH_service.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 2;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "service");
  w.kv("machines", static_cast<uint64_t>(machines));
  w.kv("workers", static_cast<uint64_t>(server.info().workers));
  w.kv("window", static_cast<uint64_t>(window));
  w.key("cases");
  w.begin_array();
  for (const CaseResult& r : results) {
    w.begin_object();
    w.kv("n", static_cast<uint64_t>(r.clients));
    w.kv("clients", static_cast<uint64_t>(r.clients));
    w.kv("requests", static_cast<uint64_t>(r.requests));
    w.kv("req_per_s", r.req_per_s);
    w.kv("p50_us", r.p50_us);
    w.kv("p99_us", r.p99_us);
    w.kv("p999_us", r.p999_us);
    w.kv("mismatches", static_cast<uint64_t>(r.mismatches));
    w.end_object();
  }
  w.end_array();
  w.key("subscribers");
  w.begin_object();
  w.kv("subscribers", static_cast<uint64_t>(overhead.subscribers));
  w.kv("clients", static_cast<uint64_t>(kOverheadClients));
  w.kv("interval_ms", overhead.interval_ms);
  w.kv("baseline_req_per_s", overhead.baseline_req_per_s);
  w.kv("with_subscribers_req_per_s", overhead.loaded_req_per_s);
  w.kv("overhead_pct", overhead.overhead_pct);
  w.kv("ticks_received", static_cast<uint64_t>(overhead.ticks_received));
  w.kv("pass", overhead.pass);
  w.end_object();
  w.kv("pass", pass);
  w.end_object();
  out << "\n";
  std::printf("(JSON written to %s)\n", json_path.c_str());

  std::printf("Targets (>= 5000 req/s at 8 clients; all responses "
              "bit-for-bit identical to direct engine calls; <= 5%% "
              "throughput loss with %zu subscribers): %s\n",
              overhead.subscribers, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
