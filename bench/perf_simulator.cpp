// Simulator performance: how expensive are the substrate's primitives —
// one transient RK4 step, a controlled steady-state solve, and a full fast
// profiling campaign — as the room grows. Guides users sizing their own
// experiments (the figure benches run thousands of settles).

#include <benchmark/benchmark.h>

#include "profiling/profiler.h"
#include "sim/room.h"
#include "obs/session.h"

using namespace coolopt;

namespace {

sim::RoomConfig room_of(size_t n) {
  sim::RoomConfig cfg;
  cfg.num_servers = n;
  cfg.seed = 3;
  // Keep the CRAC sized to the fleet so large rooms stay physical.
  const double scale = static_cast<double>(n) / 20.0;
  cfg.crac.flow_m3s *= scale;
  cfg.crac.max_cooling_w *= scale;
  cfg.wall_conductance_w_k *= scale;
  cfg.ambient_heat_capacity *= scale;
  return cfg;
}

void BM_TransientStep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  sim::MachineRoom room(room_of(n));
  room.set_uniform_utilization(0.6);
  for (auto _ : state) {
    room.step(0.5);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_TransientStep)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_ControlledSettle(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  sim::MachineRoom room(room_of(n));
  double u = 0.3;
  for (auto _ : state) {
    // Alternate operating points so the solve is never a no-op.
    u = u > 0.5 ? 0.3 : 0.7;
    room.set_uniform_utilization(u);
    room.settle();
    benchmark::DoNotOptimize(room.total_power_w());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ControlledSettle)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_FastProfilingCampaign(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    sim::MachineRoom room(room_of(n));
    benchmark::DoNotOptimize(
        profiling::profile_room(room, profiling::ProfilingOptions::fast()));
  }
}
BENCHMARK(BM_FastProfilingCampaign)->Arg(8)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_SensorRead(benchmark::State& state) {
  sim::MachineRoom room(room_of(20));
  room.set_uniform_utilization(0.5);
  room.settle();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(room.read_cpu_temp_c(i));
    i = (i + 1) % room.size();
  }
}
BENCHMARK(BM_SensorRead);

}  // namespace

// Like BENCHMARK_MAIN(), but peels off --metrics-out/--trace-out first so
// the perf suites can export telemetry (benchmark::Initialize rejects flags
// it does not know about).
int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
