// Reproduces Fig. 9: measured total power of all eight evaluation
// scenarios (Fig. 4) as total load sweeps 10..100% of room capacity.
//
// Paper shape: the holistic method (#8) draws the least power at every
// load; consolidating methods (#3, #7, #8) dominate at low load; all
// methods converge as load approaches 100%.

#include <cstdio>

#include "bench/common.h"

using namespace coolopt;

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Fig. 9 reproduction: total power of all 8 methods vs load\n");
  std::printf("Scenario key (Fig. 4): distribution / AC control / consolidation\n");
  for (const core::Scenario& s : core::Scenario::all8()) {
    std::printf("  %s\n", s.name().c_str());
  }
  std::printf("\n");

  control::EvalHarness harness(benchsup::standard_options());
  const auto table = benchsup::run_sweep(harness, core::Scenario::all8(),
                                         control::paper_load_axis());

  benchsup::print_power_table(table, "Measured total power (W):");
  benchsup::maybe_export_csv(table, "fig9_all_methods");

  // Constraint bookkeeping the paper reports in prose: no CPU exceeded
  // T_max and throughput matched the offered load.
  size_t violations = 0;
  double worst_violation_c = 0.0;
  for (const auto& [key, p] : table.points) {
    if (p.feasible && p.measurement.temp_violation) {
      ++violations;
      worst_violation_c =
          std::max(worst_violation_c,
                   p.measurement.peak_cpu_temp_c - harness.model().t_max);
    }
  }
  std::printf("Temperature-ceiling violations across all %zu operating points: %zu",
              table.points.size(), violations);
  if (violations > 0) std::printf(" (worst +%.2f C)", worst_violation_c);
  std::printf("\n");

  // Headline comparison: #8 vs the best prior heuristic #7.
  double avg7 = benchsup::average_power(table, 7);
  double avg8 = benchsup::average_power(table, 8);
  std::printf("Average power: #7 (cool job allocation) %.0f W, #8 (holistic) %.0f W "
              "-> %.1f%% average saving (paper: ~7%%)\n",
              avg7, avg8, benchsup::saving_pct(avg7, avg8));
  return 0;
}
