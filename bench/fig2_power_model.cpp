// Reproduces Fig. 2: measured vs predicted power consumption during the
// profiling load ladder (0/10/25/50/75 % of capacity, 1 Hz power-meter
// sampling, low-pass smoothing, linear least-squares fit of Eq. 9).
//
// Paper shape: the linear model tracks the measured trace closely ("the
// model is quite accurate"); our acceptance criteria are R^2 >= 0.99 and a
// mean absolute percentage error of ~1%.

#include <cstdio>
#include <cstdlib>

#include "bench/common.h"
#include "profiling/power_profiler.h"
#include "util/stats.h"

using namespace coolopt;

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Fig. 2 reproduction: measured vs predicted server power\n\n");

  sim::MachineRoom room(benchsup::standard_options().room);
  profiling::PowerProfilerOptions options;  // the paper's full ladder
  const auto result = profiling::profile_power(room, options);

  std::printf("Fitted Eq. 9:  P = w1 * L + w2  with  w1 = %.4f W per file/s, "
              "w2 = %.2f W\n",
              result.model.w1, result.model.w2);
  std::printf("Fit quality over %zu pooled samples: R^2 = %.4f, RMSE = %.2f W, "
              "MAPE = %.2f%%\n\n",
              result.samples_used, result.r_squared, result.rmse_w,
              result.mape_pct);

  // The figure's time series, decimated for console output.
  util::TextTable table({"time (s)", "load (files/s)", "measured (W)", "predicted (W)"});
  const auto& trace = result.trace;
  const size_t stride = std::max<size_t>(1, trace.sample_count() / 24);
  for (size_t s = 0; s < trace.sample_count(); s += stride) {
    table.row_numeric({trace.times()[s], trace.value(s, 0), trace.value(s, 1),
                       trace.value(s, 2)});
  }
  std::printf("%s", table.render().c_str());

  const char* dir = std::getenv("COOLOPT_BENCH_CSV_DIR");
  if (dir != nullptr) {
    const std::string path = util::strf("%s/fig2_power_model.csv", dir);
    trace.write_csv(path);
    std::printf("(full trace written to %s)\n", path.c_str());
  }

  const bool pass = result.r_squared >= 0.99 && result.mape_pct <= 2.0;
  std::printf("\nShape check (R^2 >= 0.99, MAPE <= 2%%): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
