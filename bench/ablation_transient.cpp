// Ablation: transient behaviour across operating-point changes.
//
// The paper restricts itself to steady-state analysis and warns that
// dynamic workloads ("servers are never at steady state") fall outside the
// model. This bench quantifies the boundary: apply a large load step under
// the holistic policy, trace the CPU-temperature transient, and report
// (a) the settling time toward the new steady state — the scale on which
// re-planning is safe (the paper observed ~200 s per machine), and
// (b) any transient excursion above the final steady peak during the
// transition (the new set point and the new loads are applied
// simultaneously, so the room passes through states neither operating
// point visits).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "control/setpoint_planner.h"

using namespace coolopt;

namespace {

double peak_on_temp(sim::MachineRoom& room) {
  double peak = -1e30;
  bool any = false;
  for (size_t i = 0; i < room.size(); ++i) {
    if (room.server(i).is_on()) {
      peak = std::max(peak, room.true_cpu_temp_c(i));
      any = true;
    }
  }
  return any ? peak : room.ambient_temp_c();
}

void apply_plan(sim::MachineRoom& room, const control::SetPointPlanner& sp,
                const core::Plan& plan) {
  for (size_t i = 0; i < room.size(); ++i) {
    room.set_power_state(i, plan.allocation.on[i]);
    if (plan.allocation.on[i]) room.set_load_files_s(i, plan.allocation.loads[i]);
  }
  room.set_setpoint_c(
      sp.to_setpoint(plan.allocation.t_ac, plan.allocation.it_power_w));
}

struct StepResult {
  double transient_peak_c = 0.0;
  double steady_peak_c = 0.0;
  double settle_s = 0.0;
};

StepResult run_step(control::EvalHarness& harness,
                    const control::SetPointPlanner& sp, double from_pct,
                    double to_pct) {
  sim::MachineRoom& room = harness.room();
  const core::Scenario s8 = core::Scenario::by_number(8);
  const auto plan_a =
      harness.planner().plan(s8, harness.capacity_files_s() * from_pct / 100.0);
  const auto plan_b =
      harness.planner().plan(s8, harness.capacity_files_s() * to_pct / 100.0);
  if (!plan_a || !plan_b) throw std::runtime_error("infeasible step endpoints");

  apply_plan(room, sp, *plan_a);
  room.settle();
  apply_plan(room, sp, *plan_b);

  // Final state for the settling criterion.
  std::vector<double> final_temps;
  {
    sim::MachineRoom probe(harness.room().config());
    apply_plan(probe, sp, *plan_b);
    probe.settle();
    for (size_t i = 0; i < probe.size(); ++i) {
      final_temps.push_back(probe.true_cpu_temp_c(i));
    }
  }

  StepResult result;
  result.settle_s = 3600.0;  // pessimistic default
  bool settled = false;
  for (double t = 0.0; t < 3600.0; t += 1.0) {
    room.step(1.0);
    result.transient_peak_c = std::max(result.transient_peak_c, peak_on_temp(room));
    if (!settled) {
      bool all_close = true;
      for (size_t i = 0; i < room.size(); ++i) {
        if (plan_b->allocation.on[i] &&
            std::abs(room.true_cpu_temp_c(i) - final_temps[i]) > 0.3) {
          all_close = false;
          break;
        }
      }
      if (all_close) {
        result.settle_s = t;
        settled = true;
      }
    }
  }
  double steady = -1e30;
  for (size_t i = 0; i < room.size(); ++i) {
    if (plan_b->allocation.on[i]) steady = std::max(steady, final_temps[i]);
  }
  result.steady_peak_c = steady;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Ablation: load-step transients under the holistic policy (#8)\n\n");

  control::EvalHarness harness(benchsup::standard_options());
  const control::SetPointPlanner sp =
      control::SetPointPlanner::from_profile(harness.profile().cooler);
  const double t_max = harness.model().t_max;

  util::TextTable out({"step", "transient peak (C)", "steady peak (C)",
                       "excursion (C)", "settle to 0.3C (s)"});
  double worst_over_tmax = -1e30;
  double worst_settle = 0.0;
  const std::vector<std::pair<double, double>> steps = {
      {20.0, 85.0}, {85.0, 20.0}, {40.0, 60.0}, {90.0, 50.0}};
  for (const auto& [from, to] : steps) {
    const StepResult r = run_step(harness, sp, from, to);
    out.row({util::strf("%.0f%% -> %.0f%%", from, to),
             util::strf("%.2f", r.transient_peak_c),
             util::strf("%.2f", r.steady_peak_c),
             util::strf("%+.2f", r.transient_peak_c - r.steady_peak_c),
             util::strf("%.0f", r.settle_s)});
    worst_over_tmax = std::max(worst_over_tmax, r.transient_peak_c - t_max);
    worst_settle = std::max(worst_settle, r.settle_s);
  }
  std::printf("%s\n", out.render().c_str());

  std::printf("T_max = %.1f C; worst transient margin vs T_max: %+.2f C\n",
              t_max, worst_over_tmax);
  std::printf("Settling times are O(minutes) — consistent with the paper's "
              "~200 s per-machine stabilization and with its restriction to "
              "slowly varying batch load.\n");

  // Shape: transients must settle within ~25 min (the slow mode is the
  // room's air mass draining after a consolidation) and never blow through
  // the ceiling by more than the planning margin.
  const bool pass = worst_settle <= 1500.0 && worst_over_tmax <= 0.5;
  std::printf("\nShape check (settles <= 25 min; transient stays at or below "
              "T_max + 0.5 C): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
