// Robustness campaign: the canonical fault storyline under each defense.
//
// The paper optimizes a healthy room; this bench measures what each layer of
// the resilience stack buys back when the room is NOT healthy. One scenario
// (server 3's fan fails at t=600s in the 20-machine testbed stand-in at 60%
// load), three arms that differ only in the defense stacked on the adaptive
// controller:
//
//   none        the fault goes unnoticed; the hot machine stays loaded
//   watchdog    set-point interventions only (cool the whole room harder)
//   supervisor  full ResilientController: quarantine + replan + re-admission
//
// Targets (exit nonzero on a miss):
//   * supervisor violation time < 10% of the no-defense arm's;
//   * supervisor steady-state power within 5% of the post-quarantine
//     re-optimum (a fresh PlanEngine solve with the hot machine quarantined);
//   * the supervisor arm re-run from the same seed is bit-for-bit identical.
//
// Emits BENCH_robustness.json (override with --json-out) with all three arms
// so the defense trajectory can be tracked across commits.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "control/adaptive.h"
#include "control/fault_campaign.h"
#include "control/setpoint_planner.h"
#include "obs/json_writer.h"
#include "obs/session.h"
#include "profiling/profiler.h"
#include "sim/room.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

using namespace coolopt;

namespace {

/// The machine the canonical scenario breaks (see FaultScenario::named).
constexpr size_t kFaultedServer = 3;

control::FaultCampaignOptions canonical_options(control::DefenseArm arm) {
  control::FaultCampaignOptions options;
  options.room.num_servers = 20;
  options.room.seed = 42;
  options.scenario = sim::FaultScenario::named("fan-failure");
  options.defense = arm;
  options.demand_fraction = 0.6;
  options.duration_s = 3600.0;
  options.control_period_s = 30.0;
  // The fault never heals in this storyline; keep the quarantine in force to
  // the end of the run so the steady-state comparison is crisp. Probation
  // and re-admission are exercised by the fan-flap scenario in the tests.
  options.resilient.probation_dwell_s = 2.0 * options.duration_s;
  return options;
}

bool identical(const control::FaultCampaignResult& a,
               const control::FaultCampaignResult& b) {
  return a.violation_s == b.violation_s && a.peak_cpu_c == b.peak_cpu_c &&
         a.shed_files == b.shed_files && a.energy_j == b.energy_j &&
         a.final_total_power_w == b.final_total_power_w &&
         a.final_throughput_files_s == b.final_throughput_files_s &&
         a.fault_events == b.fault_events && a.quarantines == b.quarantines &&
         a.readmissions == b.readmissions &&
         a.emergency_overrides == b.emergency_overrides &&
         a.watchdog_interventions == b.watchdog_interventions;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsSession obs_session(argc, argv);
  util::CliFlags flags;
  flags.define("json-out", "machine-readable results path",
               "BENCH_robustness.json");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("Robustness campaign").c_str());
    return 0;
  }

  std::printf("Robustness campaign: fan failure at t=600s, 20 machines, "
              "60%% load, 3600s\n\n");

  const std::vector<control::DefenseArm> arms = {
      control::DefenseArm::kNone, control::DefenseArm::kWatchdog,
      control::DefenseArm::kSupervisor};
  std::vector<control::FaultCampaignResult> results;
  for (const control::DefenseArm arm : arms) {
    results.push_back(control::run_fault_campaign(canonical_options(arm)));
  }
  const control::FaultCampaignResult& none = results[0];
  const control::FaultCampaignResult& supervisor = results[2];

  // Reproducibility: the supervisor arm replayed from the same seed must be
  // bit-for-bit identical (sensors, scheduler, and planner are all
  // deterministic functions of the config).
  const control::FaultCampaignResult rerun = control::run_fault_campaign(
      canonical_options(control::DefenseArm::kSupervisor));
  const bool reproducible = identical(supervisor, rerun);

  // Post-quarantine re-optimum: the steady state a from-scratch adaptive
  // plan reaches on a room with the faulted machine already fenced off —
  // same model, same planner policy, no fault history. "Recovered" means
  // the supervisor's end state carries no residue of the episode (panic set
  // point, stale ON set); measured-vs-measured keeps model fit error out of
  // the comparison.
  const control::FaultCampaignOptions canon =
      canonical_options(control::DefenseArm::kSupervisor);
  const profiling::RoomProfile profile = [&] {
    sim::MachineRoom proto(canon.room);
    return profiling::profile_room(proto, profiling::ProfilingOptions::fast());
  }();
  sim::MachineRoom ref_room(canon.room);
  ref_room.set_fan_failed(kFaultedServer, true);
  control::AdaptiveController ref_controller(
      ref_room, profile.model,
      control::SetPointPlanner::from_profile(profile.cooler),
      canon.resilient.adaptive);
  ref_controller.set_quarantined({kFaultedServer});
  ref_controller.update(supervisor.demand_files_s);
  ref_room.settle();
  const double reoptimum_w = ref_room.total_power_w();
  const double power_gap_pct =
      reoptimum_w > 0.0
          ? 100.0 * std::abs(supervisor.final_total_power_w - reoptimum_w) /
                reoptimum_w
          : 100.0;

  util::TextTable table({"defense", "violation (s)", "peak CPU (C)",
                         "shed (files)", "energy (kJ)", "final W",
                         "quarantines", "overrides"});
  for (const control::FaultCampaignResult& r : results) {
    table.row({to_string(r.defense), util::strf("%.0f", r.violation_s),
               util::strf("%.2f", r.peak_cpu_c),
               util::strf("%.0f", r.shed_files),
               util::strf("%.1f", r.energy_j / 1000.0),
               util::strf("%.0f", r.final_total_power_w),
               util::strf("%zu", r.quarantines),
               util::strf("%zu", r.emergency_overrides)});
  }
  std::printf("%s\n", table.render().c_str());

  const double violation_ratio =
      none.violation_s > 0.0 ? supervisor.violation_s / none.violation_s : 0.0;
  const bool fault_bites = none.violation_s > 0.0;
  const bool violation_ok = fault_bites && violation_ratio < 0.10;
  const bool power_ok = reoptimum_w > 0.0 && power_gap_pct < 5.0;
  const bool pass = violation_ok && power_ok && reproducible;

  std::printf("supervisor violation %.0fs vs no-defense %.0fs (ratio %.3f, "
              "target < 0.10)\n",
              supervisor.violation_s, none.violation_s, violation_ratio);
  std::printf("supervisor final power %.0f W vs post-quarantine re-optimum "
              "%.0f W (gap %.2f%%, target < 5%%)\n",
              supervisor.final_total_power_w, reoptimum_w, power_gap_pct);
  std::printf("seed-replay bit-for-bit identical: %s\n",
              reproducible ? "yes" : "NO");

  const std::string json_path =
      flags.get_string("json-out", "BENCH_robustness.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 2;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "robustness");
  w.kv("scenario", supervisor.scenario);
  w.kv("room_servers", static_cast<uint64_t>(20));
  w.kv("demand_files_s", supervisor.demand_files_s);
  w.kv("t_max_c", supervisor.t_max_c);
  w.key("arms");
  w.begin_array();
  for (const control::FaultCampaignResult& r : results) {
    w.begin_object();
    w.kv("defense", to_string(r.defense));
    w.kv("violation_s", r.violation_s);
    w.kv("peak_cpu_c", r.peak_cpu_c);
    w.kv("shed_files", r.shed_files);
    w.kv("energy_j", r.energy_j);
    w.kv("final_total_power_w", r.final_total_power_w);
    w.kv("final_throughput_files_s", r.final_throughput_files_s);
    w.kv("fault_events", static_cast<uint64_t>(r.fault_events));
    w.kv("quarantines", static_cast<uint64_t>(r.quarantines));
    w.kv("readmissions", static_cast<uint64_t>(r.readmissions));
    w.kv("emergency_overrides", static_cast<uint64_t>(r.emergency_overrides));
    w.kv("watchdog_interventions",
         static_cast<uint64_t>(r.watchdog_interventions));
    w.end_object();
  }
  w.end_array();
  w.kv("violation_ratio", violation_ratio);
  w.kv("reoptimum_power_w", reoptimum_w);
  w.kv("power_gap_pct", power_gap_pct);
  w.kv("reproducible", reproducible);
  w.kv("pass", pass);
  w.end_object();
  out << "\n";
  std::printf("(JSON written to %s)\n", json_path.c_str());

  std::printf("Targets (violation < 10%% of no-defense; power within 5%% of "
              "re-optimum; seed-reproducible): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
