// Algorithm performance: the closed form (Section III-A) is O(n) per solve
// — "it takes linear computational complexity (with respect to the number
// of servers) to derive workload assignment and AC set point" — and the
// bounded LP fallback is polynomial but far heavier; this suite quantifies
// both, plus the end-to-end scenario planner.

#include <benchmark/benchmark.h>

#include "core/closed_form.h"
#include "core/lp_optimizer.h"
#include "core/scenario.h"
#include "core/synthetic.h"
#include "obs/session.h"

using namespace coolopt;

namespace {

core::RoomModel model_of_size(size_t n) {
  core::SyntheticModelOptions options;
  options.machines = n;
  options.seed = 7;
  return core::make_synthetic_model(options);
}

std::vector<size_t> all_indices(size_t n) {
  std::vector<size_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

void BM_ClosedFormSolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::RoomModel model = model_of_size(n);
  const core::AnalyticOptimizer opt(model);
  const auto on = all_indices(n);
  const double load = model.total_capacity() * 0.6;
  // One result slot reused across iterations (the warm scratch call shape):
  // the timing measures the Eq. 19/21/22 arithmetic, not the allocator.
  core::ClosedFormResult result;
  for (auto _ : state) {
    opt.solve_into(on.data(), on.size(), load, result);
    benchmark::DoNotOptimize(result.allocation.total_power_w);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ClosedFormSolve)->RangeMultiplier(4)->Range(8, 2048)->Complexity(benchmark::oN);

void BM_LpOptimizerSolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::RoomModel model = model_of_size(n);
  const core::LpOptimizer opt(model);
  const auto on = all_indices(n);
  const double load = model.total_capacity() * 0.6;
  // Reused tableau workspace + result slot: simplex pivots only.
  core::LpWorkspace ws;
  core::Allocation alloc;
  for (auto _ : state) {
    opt.solve_into(on.data(), on.size(), load, ws, alloc);
    benchmark::DoNotOptimize(alloc.total_power_w);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_LpOptimizerSolve)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_ScenarioPlanner(benchmark::State& state) {
  const core::RoomModel model = model_of_size(20);
  const core::ScenarioPlanner planner(model);
  const core::Scenario holistic = core::Scenario::by_number(8);
  const double load = model.total_capacity() * 0.45;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(holistic, load));
  }
}
BENCHMARK(BM_ScenarioPlanner);

void BM_MaxSafeTac(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const core::RoomModel model = model_of_size(n);
  std::vector<double> loads(n, 20.0);
  std::vector<bool> on(n, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::max_safe_t_ac(model, loads, on));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MaxSafeTac)->RangeMultiplier(4)->Range(8, 2048)->Complexity(benchmark::oN);

}  // namespace

// Like BENCHMARK_MAIN(), but peels off --metrics-out/--trace-out first so
// the perf suites can export telemetry (benchmark::Initialize rejects flags
// it does not know about).
int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
