// Reproduces Fig. 1: the one-dimensional particle system behind the
// consolidation algorithm (Section III-B).
//
// The figure illustrates an n = 4, k = 2 system where only two crossing
// events occur, so only three coordinate orders ever exist — and for k = 2
// only two distinct top-2 subsets need checking instead of all C(4,2) = 6.
// This binary prints the construction end to end: particles, events,
// per-segment orders, and the top-k candidates the algorithm actually
// examines, then checks the counting argument.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <set>

#include "core/consolidation.h"
#include "obs/session.h"
#include "util/strings.h"
#include "util/table.h"

using namespace coolopt;

namespace {

/// Inverse of the Eq. 23 reduction: a model whose particles are (a_i, b_i).
core::RoomModel model_from_particles(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  core::RoomModel model;
  const double w1 = 1.0;
  const double w2 = 1.0;
  const double t_max = 50.0;
  for (size_t i = 0; i < a.size(); ++i) {
    core::MachineModel m;
    m.id = static_cast<int>(i);
    m.power = {w1, w2};
    m.thermal.alpha = 1.0;
    m.thermal.beta = 1.0 / b[i];
    m.thermal.gamma = t_max - m.thermal.beta * w2 - a[i] * m.thermal.beta * w1;
    m.capacity = 1000.0;
    model.machines.push_back(m);
  }
  model.cooler = {1.0, 100.0, 0.0, 0.0, -1e300};
  model.t_max = t_max;
  model.t_ac_min = 0.0;
  model.t_ac_max = 1000.0;
  model.validate();
  return model;
}

std::string order_at(const core::ParticleSystem& ps, double t) {
  std::vector<size_t> idx(ps.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(), [&](size_t x, size_t y) {
    return ps.coordinate(x, t) > ps.coordinate(y, t);
  });
  std::vector<std::string> names;
  for (const size_t i : idx) names.push_back(util::strf("%zu", i));
  return "(" + util::join(names, ",") + ")";
}

}  // namespace

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Fig. 1 reproduction: the consolidation particle system "
              "(n = 4, k = 2, two events)\n\n");

  // A four-particle system with exactly two crossings in t > 0, like the
  // figure: particle 0 starts highest but falls fast, getting passed by 1
  // at t = 1 and by 2 at t = 3; the bottom particle 3 falls fastest of all
  // and is never caught; 1 and 2 are parallel and never meet.
  const std::vector<double> a = {10.0, 8.0, 4.0, 0.2};
  const std::vector<double> b = {2.5, 0.5, 0.5, 2.6};
  const core::RoomModel model = model_from_particles(a, b);
  const core::ParticleSystem ps = core::ParticleSystem::from_model(model);

  util::TextTable particles({"particle", "a (initial coordinate)", "b (speed)"});
  for (size_t i = 0; i < 4; ++i) {
    particles.row({util::strf("%zu", i), util::strf("%.3f", ps.a[i]),
                   util::strf("%.3f", ps.b[i])});
  }
  std::printf("%s\n", particles.render().c_str());

  const core::EventConsolidator ec(model);
  std::printf("Crossing events in t > 0: %zu (the figure has 2)\n",
              ec.event_count());
  std::printf("Coordinate orders over time:\n");
  std::printf("  t = 0.0: %s\n", order_at(ps, 0.0).c_str());
  std::printf("  t = 2.0: %s\n", order_at(ps, 2.0).c_str());
  std::printf("  t = 4.0: %s\n\n", order_at(ps, 4.0).c_str());

  // The counting argument: distinct top-2 sets across all orders.
  std::set<std::set<size_t>> top2;
  for (const double t : {0.5, 2.0, 4.0}) {
    std::vector<size_t> idx(4);
    std::iota(idx.begin(), idx.end(), size_t{0});
    std::sort(idx.begin(), idx.end(), [&](size_t x, size_t y) {
      return ps.coordinate(x, t) > ps.coordinate(y, t);
    });
    top2.insert({idx[0], idx[1]});
  }
  std::printf("Distinct top-2 candidate subsets across all orders: %zu "
              "(vs C(4,2) = 6 for naive enumeration)\n",
              top2.size());

  // And the machinery agrees with brute force on this instance.
  const core::BruteForceConsolidator brute(model);
  bool agree = true;
  for (const double load : {0.5, 2.0, 5.0, 9.0}) {
    const auto fast = ec.query(load);
    const auto slow = brute.best(load);
    if (fast.has_value() != slow.has_value() ||
        (fast && std::abs(fast->predicted_total_power_w -
                          slow->predicted_total_power_w) > 1e-9)) {
      agree = false;
    }
  }

  const bool pass = ec.event_count() == 2 && top2.size() <= 2 && agree;
  std::printf("\nShape check (2 events, <= 2 candidate subsets, algorithm == "
              "enumeration): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
