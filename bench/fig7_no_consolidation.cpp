// Reproduces Fig. 7: load-distribution strategies under AC control WITHOUT
// consolidation (#4 Even, #5 Bottom-up, #6 Optimal).
//
// Paper shape: "the optimal load distribution computed by our heuristic
// saves the most energy compared to the other two baselines" — #6 draws the
// least power at every load; all three converge at 100%.

#include <cstdio>

#include "bench/common.h"

using namespace coolopt;

int main(int argc, char** argv) {
  coolopt::obs::ObsSession obs_session(argc, argv);
  std::printf("Fig. 7 reproduction: Even vs Bottom-up vs Optimal "
              "(AC control, no consolidation)\n\n");

  control::EvalHarness harness(benchsup::standard_options());
  const std::vector<core::Scenario> scenarios = {
      core::Scenario::by_number(4), core::Scenario::by_number(5),
      core::Scenario::by_number(6)};
  const auto table =
      benchsup::run_sweep(harness, scenarios, control::paper_load_axis());

  benchsup::print_power_table(table, "Measured total power (W):");
  benchsup::maybe_export_csv(table, "fig7_no_consolidation");

  util::TextTable savings({"load %", "#6 vs #4 (%)", "#6 vs #5 (%)"});
  bool pass = true;
  for (const double pct : table.loads) {
    const double p4 = table.at(4, pct).measurement.total_power_w;
    const double p5 = table.at(5, pct).measurement.total_power_w;
    const double p6 = table.at(6, pct).measurement.total_power_w;
    savings.labeled_row(util::strf("%.0f", pct),
                        {benchsup::saving_pct(p4, p6), benchsup::saving_pct(p5, p6)},
                        "%.1f");
    // Optimal never loses to either baseline. Tolerance 1%: at very light
    // load the CRAC coil is off for every strategy and the true (mildly
    // concave) P(u) curve makes concentrating load a few watts cheaper than
    // the linear model can know — see EXPERIMENTS.md.
    if (p6 > p4 * 1.01 || p6 > p5 * 1.01) pass = false;
  }
  std::printf("%s", savings.render().c_str());

  std::printf("\nShape check (Optimal <= Even and <= Bottom-up at every load, "
              "1%% tolerance): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
