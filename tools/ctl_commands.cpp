#include "tools/ctl_commands.h"

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "control/eval_engine.h"
#include "control/fault_campaign.h"
#include "core/engine.h"
#include "core/verification.h"
#include "obs/session.h"
#include "profiling/profile_io.h"
#include "service/client.h"
#include "service/wire.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

namespace coolopt::tools {
namespace {

constexpr const char* kUsage =
    "cooloptctl <command> [flags]\n"
    "\n"
    "Commands:\n"
    "  profile   profile a simulated room and save the fitted model\n"
    "  plan      compute an operating point from a saved model\n"
    "  audit     plan + feasibility/local-optimality audit\n"
    "  sweep     run scenarios across the load axis on a simulated room\n"
    "  frontier  print the maxL power-budget capacity frontier\n"
    "  inject    replay a fault scenario against a live room under a defense\n"
    "  client    send one request to a running cooloptd and print the reply\n"
    "  watch     subscribe to a running cooloptd and stream telemetry ticks\n"
    "\n"
    "Global flags (any command):\n"
    "  --metrics-out PATH  write the metrics + run-trace JSON on exit\n"
    "  --trace-out PATH    write the per-timestep trace CSV on exit\n"
    "\n"
    "Run `cooloptctl <command> --help` for the command's flags.\n";

sim::RoomConfig room_from_flags(const util::CliFlags& flags) {
  sim::RoomConfig cfg;
  cfg.num_servers = static_cast<size_t>(flags.get_int("servers", 20));
  cfg.num_racks = static_cast<size_t>(flags.get_int("racks", 1));
  cfg.seed = static_cast<uint64_t>(flags.get_int("seed", 42));
  return cfg;
}

int cmd_profile(util::CliFlags& flags, int argc, const char* const* argv,
                std::ostream& out, std::ostream& err) {
  flags.define("servers", "machines in the room", "20");
  flags.define("racks", "racks in the room", "1");
  flags.define("seed", "simulation seed", "42");
  flags.define("out", "path for the fitted model CSV", "room_model.csv");
  flags.define("full", "paper-length campaign instead of the fast preset", "false");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    err << error << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    out << flags.usage("cooloptctl profile");
    return 0;
  }

  sim::MachineRoom room(room_from_flags(flags));
  const auto options = flags.get_bool("full", false)
                           ? profiling::ProfilingOptions{}
                           : profiling::ProfilingOptions::fast();
  const auto profile = profiling::profile_room(room, options);
  const std::string path = flags.get_string("out", "room_model.csv");
  profiling::save_model(profile.model, path);
  out << util::strf(
      "Profiled %zu machines: power R^2 %.4f, cooler cfac %.1f W/K.\n",
      room.size(), profile.power.r_squared, profile.model.cooler.cfac);
  out << "Model written to " << path << "\n";
  return 0;
}

/// Shared by plan/audit: parse model+scenario+load, produce the plan.
struct PlanArgs {
  core::RoomModel model;
  core::Scenario scenario;
  double load = 0.0;
};

int parse_plan_args(util::CliFlags& flags, int argc, const char* const* argv,
                    const char* name, std::ostream& out, std::ostream& err,
                    PlanArgs& parsed) {
  flags.define("model", "path to a model CSV from `cooloptctl profile`",
               "room_model.csv");
  flags.define("scenario", "Fig. 4 scenario number (1-8)", "8");
  flags.define("load-pct", "total load, percent of capacity", "50");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    err << error << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    out << flags.usage(name);
    return 1;  // handled, but no work
  }
  try {
    parsed.model = profiling::load_model(flags.get_string("model", "room_model.csv"));
  } catch (const std::exception& e) {
    err << "cannot load model: " << e.what() << "\n";
    return 2;
  }
  try {
    parsed.scenario = core::Scenario::by_number(flags.get_int("scenario", 8));
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }
  parsed.load =
      parsed.model.total_capacity() * flags.get_double("load-pct", 50.0) / 100.0;
  return 0;
}

void print_plan(const core::RoomModel& model, const core::Plan& plan,
                std::ostream& out) {
  util::TextTable table({"machine", "state", "load", "util %", "pred CPU (C)"});
  for (size_t i = 0; i < model.size(); ++i) {
    const bool on = plan.allocation.on[i];
    table.row({util::strf("%zu", i), on ? "ON" : "off",
               on ? util::strf("%.1f", plan.allocation.loads[i]) : "-",
               on ? util::strf("%.0f", 100.0 * plan.allocation.loads[i] /
                                           model.machines[i].capacity)
                  : "-",
               on ? util::strf("%.1f",
                               core::predicted_cpu_temp(model, plan.allocation, i))
                  : "-"});
  }
  out << table.render();
  out << util::strf(
      "T_ac %.2f C; predicted IT %.0f W + cooling %.0f W = %.0f W total\n",
      plan.allocation.t_ac, plan.allocation.it_power_w,
      plan.allocation.cooling_power_w, plan.allocation.total_power_w);
}

int cmd_plan(util::CliFlags& flags, int argc, const char* const* argv,
             std::ostream& out, std::ostream& err) {
  PlanArgs args{core::RoomModel{}, core::Scenario{}, 0.0};
  const int rc = parse_plan_args(flags, argc, argv, "cooloptctl plan", out, err, args);
  if (rc != 0) return rc == 1 ? 0 : rc;

  const core::PlanEngine engine(std::move(args.model));
  const auto result = engine.solve(core::PlanRequest{args.scenario, args.load});
  if (!result.feasible()) {
    err << "no feasible operating point for " << args.scenario.name() << "\n";
    return 1;
  }
  out << args.scenario.name() << " at " << util::strf("%.1f", args.load)
      << " load units:\n";
  print_plan(engine.model(), *result.plan, out);
  return 0;
}

int cmd_audit(util::CliFlags& flags, int argc, const char* const* argv,
              std::ostream& out, std::ostream& err) {
  PlanArgs args{core::RoomModel{}, core::Scenario{}, 0.0};
  const int rc =
      parse_plan_args(flags, argc, argv, "cooloptctl audit", out, err, args);
  if (rc != 0) return rc == 1 ? 0 : rc;

  const core::PlanEngine engine(std::move(args.model));
  const auto result = engine.solve(core::PlanRequest{args.scenario, args.load});
  if (!result.feasible()) {
    err << "no feasible operating point\n";
    return 1;
  }
  const core::Plan& plan = *result.plan;
  const auto issues =
      core::audit_feasibility(engine.model(), plan.allocation, args.load);
  if (issues.empty()) {
    out << "feasibility: OK\n";
  } else {
    for (const auto& issue : issues) {
      out << "feasibility: " << issue.describe() << "\n";
    }
  }
  const auto audit = core::audit_local_optimality(engine.model(), plan.allocation);
  if (audit.locally_optimal) {
    out << "local optimality: OK (no improving perturbation found)\n";
  } else {
    out << util::strf("local optimality: IMPROVABLE by %.3f W via %s\n",
                      audit.best_improvement_w, audit.best_move.c_str());
  }
  return issues.empty() && audit.locally_optimal ? 0 : 1;
}

int cmd_sweep(util::CliFlags& flags, int argc, const char* const* argv,
              std::ostream& out, std::ostream& err) {
  flags.define("servers", "machines in the room", "20");
  flags.define("racks", "racks in the room", "1");
  flags.define("seed", "simulation seed", "42");
  flags.define("scenarios", "comma-separated Fig. 4 numbers", "1,7,8");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    err << error << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    out << flags.usage("cooloptctl sweep");
    return 0;
  }
  std::vector<core::Scenario> scenarios;
  for (const std::string& tok :
       util::split(flags.get_string("scenarios", "1,7,8"), ',')) {
    int num = 0;
    if (!util::parse_int(tok, num)) {
      err << "bad scenario list entry: '" << tok << "'\n";
      return 2;
    }
    try {
      scenarios.push_back(core::Scenario::by_number(num));
    } catch (const std::exception& e) {
      err << e.what() << "\n";
      return 2;
    }
  }

  control::EvalOptions options;
  options.room = room_from_flags(flags);
  control::EvalEngine engine(options);
  // One batched request over the load-major grid: the engine profiles once,
  // then measures the points in parallel over pooled room replicas.
  const std::vector<double> loads = control::paper_load_axis();
  std::vector<control::EvalRequest> requests;
  requests.reserve(loads.size() * scenarios.size());
  for (const double pct : loads) {
    for (const auto& s : scenarios) requests.push_back({s, pct});
  }
  const std::vector<control::EvalPoint> points = engine.measure_batch(requests);
  std::vector<std::string> columns{"load %"};
  for (const auto& s : scenarios) columns.push_back(s.name());
  util::TextTable table(columns);
  size_t r = 0;
  for (const double pct : loads) {
    std::vector<std::string> row{util::strf("%.0f", pct)};
    for (size_t i = 0; i < scenarios.size(); ++i) {
      const control::EvalPoint& point = points[r++];
      row.push_back(point.feasible
                        ? util::strf("%.0f", point.measurement.total_power_w)
                        : std::string("infeasible"));
    }
    table.row(std::move(row));
  }
  out << "Measured total power (W):\n" << table.render();
  return 0;
}

int cmd_frontier(util::CliFlags& flags, int argc, const char* const* argv,
                 std::ostream& out, std::ostream& err) {
  flags.define("model", "path to a model CSV", "room_model.csv");
  flags.define("k", "comma-separated machine counts", "4,8,12,16,20");
  flags.define("budgets", "comma-separated power budgets, W",
               "400,700,1000,1400,1900,2500");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    err << error << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    out << flags.usage("cooloptctl frontier");
    return 0;
  }
  core::RoomModel model;
  try {
    model = profiling::load_model(flags.get_string("model", "room_model.csv"));
  } catch (const std::exception& e) {
    err << "cannot load model: " << e.what() << "\n";
    return 2;
  }
  const core::PlanEngine engine(std::move(model));
  const core::EventConsolidator* consolidator = engine.consolidator();
  if (consolidator == nullptr) {
    err << "frontier needs the particle reduction (Eq. 23), which requires "
           "uniform w1/w2 across the fleet; this model is heterogeneous\n";
    return 2;
  }

  std::vector<size_t> ks;
  for (const std::string& tok : util::split(flags.get_string("k", ""), ',')) {
    int k = 0;
    if (!util::parse_int(tok, k) || k <= 0 ||
        static_cast<size_t>(k) > engine.model().size()) {
      err << "bad k: '" << tok << "'\n";
      return 2;
    }
    ks.push_back(static_cast<size_t>(k));
  }
  std::vector<std::string> columns{"budget (W)"};
  for (const size_t k : ks) columns.push_back(util::strf("k=%zu", k));
  util::TextTable table(columns);
  for (const std::string& tok : util::split(flags.get_string("budgets", ""), ',')) {
    double budget = 0.0;
    if (!util::parse_double(tok, budget)) {
      err << "bad budget: '" << tok << "'\n";
      return 2;
    }
    std::vector<std::string> row{util::strf("%.0f", budget)};
    for (const size_t k : ks) {
      const double l = consolidator->max_load_for_budget(budget, k);
      row.push_back(l > 0.0 ? util::strf("%.0f", l) : std::string("-"));
    }
    table.row(std::move(row));
  }
  out << "Servable load (files/s) per budget and fleet size:\n" << table.render();
  return 0;
}

/// Parses a comma-separated list of non-negative shard/machine indices.
/// Returns false (and reports via `err`) on any malformed entry.
bool parse_index_list(const std::string& csv, const char* what,
                      std::vector<size_t>& indices, std::ostream& err) {
  for (const std::string& tok : util::split(csv, ',')) {
    if (tok.empty()) continue;
    int index = 0;
    if (!util::parse_int(tok, index) || index < 0) {
      err << "bad " << what << " index: '" << tok << "'\n";
      return false;
    }
    indices.push_back(static_cast<size_t>(index));
  }
  return true;
}

int cmd_inject(util::CliFlags& flags, int argc, const char* const* argv,
               std::ostream& out, std::ostream& err) {
  flags.define("servers", "machines in the room", "20");
  flags.define("racks", "racks in the room", "1");
  flags.define("seed", "simulation seed", "42");
  flags.define("scenario", "fault scenario name (see below)", "fan-failure");
  flags.define("defense", "none | watchdog | supervisor", "supervisor");
  flags.define("load-pct", "offered load, percent of fitted capacity", "60");
  flags.define("duration", "simulated seconds to run", "3600");
  flags.define("control-period", "seconds between controller updates", "30");
  flags.define("down-shards",
               "comma-separated fleet shard indices to declare down; sends a "
               "degraded fleetplan to a live cooloptd instead of running a "
               "local room campaign",
               "");
  flags.define("host", "cooloptd address (--down-shards mode)", "127.0.0.1");
  flags.define("port", "cooloptd port (--down-shards mode)", "7077");
  flags.define("plan-scenario",
               "Fig. 4 scenario number for the degraded fleetplan", "8");
  flags.define("id", "request id (--down-shards mode)", "1");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    err << error << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    out << flags.usage("cooloptctl inject");
    out << "Scenarios:";
    for (const std::string& name : sim::FaultScenario::names()) {
      out << " " << name;
    }
    out << "\n";
    return 0;
  }

  // Shard-failure mode: exercise the fleet failure-domain path end to end
  // against a running daemon rather than simulating a room-level fault.
  const std::string down_csv = flags.get_string("down-shards", "");
  if (!down_csv.empty()) {
    service::WireRequest request;
    request.verb = service::Verb::kFleetplan;
    request.id = static_cast<uint64_t>(flags.get_int("id", 1));
    request.scenario = flags.get_int("plan-scenario", 8);
    request.load_pct = flags.get_double("load-pct", 60.0);
    if (!parse_index_list(down_csv, "shard", request.down_shards, err)) {
      return 2;
    }
    service::ServiceClient client;
    if (!client.connect(flags.get_string("host", "127.0.0.1"),
                        static_cast<uint16_t>(flags.get_int("port", 7077)))) {
      err << client.last_error() << "\n";
      return 1;
    }
    const std::optional<std::string> response = client.call_with_retry(request);
    if (!response.has_value()) {
      err << client.last_error() << "\n";
      return 1;
    }
    out << *response << "\n";
    service::JsonValue doc;
    std::string parse_error;
    if (service::parse_json(*response, doc, parse_error)) {
      const service::JsonValue* ok = doc.find("ok");
      if (ok != nullptr && ok->is_bool() && !ok->as_bool()) return 1;
    }
    return 0;
  }

  control::FaultCampaignOptions options;
  options.room = room_from_flags(flags);
  options.scenario =
      sim::FaultScenario::named(flags.get_string("scenario", "fan-failure"));
  options.defense = control::parse_defense(flags.get_string("defense", "supervisor"));
  options.demand_fraction = flags.get_double("load-pct", 60.0) / 100.0;
  options.duration_s = flags.get_double("duration", 3600.0);
  options.control_period_s = flags.get_double("control-period", 30.0);

  const control::FaultCampaignResult r = control::run_fault_campaign(options);
  out << util::strf(
      "Injected '%s' against %zu machines under defense '%s':\n",
      r.scenario.c_str(), options.room.num_servers, to_string(r.defense));
  util::TextTable table({"metric", "value"});
  table.row({"fault events fired", util::strf("%zu", r.fault_events)});
  table.row({"violation time (s)", util::strf("%.0f", r.violation_s)});
  table.row({"peak CPU (C)", util::strf("%.2f", r.peak_cpu_c)});
  table.row({"T_max (C)", util::strf("%.2f", r.t_max_c)});
  table.row({"shed work (files)", util::strf("%.0f", r.shed_files)});
  table.row({"energy (kJ)", util::strf("%.1f", r.energy_j / 1000.0)});
  table.row({"final power (W)", util::strf("%.0f", r.final_total_power_w)});
  table.row({"final throughput (files/s)",
             util::strf("%.1f", r.final_throughput_files_s)});
  table.row({"quarantines", util::strf("%zu", r.quarantines)});
  table.row({"re-admissions", util::strf("%zu", r.readmissions)});
  table.row({"emergency overrides", util::strf("%zu", r.emergency_overrides)});
  table.row({"watchdog interventions",
             util::strf("%zu", r.watchdog_interventions)});
  out << table.render();
  return 0;
}

// One-shot protocol client: builds a request from flags (or sends a raw
// --line verbatim), prints the response line, and exits with the
// response's ok field so scripts can branch on it.
int cmd_client(util::CliFlags& flags, int argc, const char* const* argv,
               std::ostream& out, std::ostream& err) {
  flags.define("host", "cooloptd address", "127.0.0.1");
  flags.define("port", "cooloptd port", "7077");
  flags.define("verb",
               "ping | health | plan | fleetplan | measure | sweep | inject",
               "ping");
  flags.define("priority", "admission priority: high | normal | low", "normal");
  flags.define("id", "request id echoed in the response", "1");
  flags.define("scenario", "Fig. 4 scenario number (plan/measure)", "8");
  flags.define("load-pct", "load, percent of fitted capacity", "50");
  flags.define("quarantined", "comma-separated machine indices (plan)", "");
  flags.define("down-shards",
               "comma-separated fleet shard indices to treat as unavailable "
               "(fleetplan)",
               "");
  flags.define("deadline-ms",
               "drop the request unanswered-by-solve if it waits longer than "
               "this in the server queue (plan/fleetplan)",
               "0");
  flags.define("timeout-ms",
               "ceiling on each wait for a response line (0 = block forever)",
               "0");
  flags.define("retries",
               "total attempts for idempotent verbs (reconnect + resend with "
               "capped exponential backoff)",
               "1");
  flags.define("trace-id",
               "attach this trace id to plan/fleetplan; the response then "
               "carries a trace block with timed spans",
               "");
  flags.define("fault", "fault scenario name (inject)", "fan-failure");
  flags.define("defense", "none | watchdog | supervisor (inject)", "supervisor");
  flags.define("line", "raw protocol line to send instead of building one", "");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    err << error << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    out << flags.usage("cooloptctl client");
    return 0;
  }

  const int timeout_ms = flags.get_int("timeout-ms", 0);
  const int retries = flags.get_int("retries", 1);
  if (timeout_ms < 0 || retries < 1) {
    err << "client: --timeout-ms must be non-negative, --retries >= 1\n";
    return 2;
  }

  std::string line = flags.get_string("line", "");
  service::WireRequest request;
  if (line.empty()) {
    request.id = static_cast<uint64_t>(flags.get_int("id", 1));
    const std::string verb = flags.get_string("verb", "ping");
    if (verb == "ping") request.verb = service::Verb::kPing;
    else if (verb == "health") request.verb = service::Verb::kHealth;
    else if (verb == "plan") request.verb = service::Verb::kPlan;
    else if (verb == "fleetplan") request.verb = service::Verb::kFleetplan;
    else if (verb == "measure") request.verb = service::Verb::kMeasure;
    else if (verb == "sweep") request.verb = service::Verb::kSweep;
    else if (verb == "inject") request.verb = service::Verb::kInject;
    else {
      err << "unknown verb '" << verb << "'\n";
      return 2;
    }
    const std::string priority = flags.get_string("priority", "normal");
    if (priority == "high") request.priority = service::Priority::kHigh;
    else if (priority == "normal") request.priority = service::Priority::kNormal;
    else if (priority == "low") request.priority = service::Priority::kLow;
    else {
      err << "unknown priority '" << priority << "'\n";
      return 2;
    }
    request.scenario = flags.get_int("scenario", 8);
    request.load_pct = flags.get_double("load-pct", 50.0);
    if (!parse_index_list(flags.get_string("quarantined", ""), "quarantined",
                          request.quarantined, err)) {
      return 2;
    }
    if (!parse_index_list(flags.get_string("down-shards", ""), "shard",
                          request.down_shards, err)) {
      return 2;
    }
    const int deadline_ms = flags.get_int("deadline-ms", 0);
    if (deadline_ms < 0) {
      err << "client: --deadline-ms must be non-negative\n";
      return 2;
    }
    if (deadline_ms > 0) {
      request.deadline_ms = static_cast<uint64_t>(deadline_ms);
    }
    request.fault = flags.get_string("fault", "fan-failure");
    request.defense = flags.get_string("defense", "supervisor");
    const std::string trace_id = flags.get_string("trace-id", "");
    if (!trace_id.empty()) {
      int id = 0;
      if (!util::parse_int(trace_id, id) || id < 0) {
        err << "client: --trace-id must be a non-negative integer, got '"
            << trace_id << "'\n";
        return 2;
      }
      request.trace_id = static_cast<uint64_t>(id);
    }
    line = service::encode_request(request);
  }

  service::ServiceClient client;
  client.set_timeout_ms(static_cast<uint64_t>(timeout_ms));
  if (!client.connect(flags.get_string("host", "127.0.0.1"),
                      static_cast<uint16_t>(flags.get_int("port", 7077)))) {
    err << client.last_error() << "\n";
    return 1;
  }
  std::optional<std::string> response;
  if (flags.get_string("line", "").empty()) {
    // Structured path: retries apply only to idempotent verbs (the client
    // enforces this), so --retries can never double-run an inject.
    service::ServiceClient::RetryPolicy policy;
    policy.attempts = retries;
    response = client.call_with_retry(request, policy);
  } else {
    response = client.call(line);
  }
  if (!response.has_value()) {
    err << client.last_error() << "\n";
    return 1;
  }
  out << *response << "\n";
  // Exit status mirrors the response envelope so scripts can branch on it.
  service::JsonValue doc;
  std::string parse_error;
  if (service::parse_json(*response, doc, parse_error)) {
    const service::JsonValue* ok = doc.find("ok");
    if (ok != nullptr && ok->is_bool() && !ok->as_bool()) return 1;
  }
  return 0;
}

/// Renders one parsed telemetry tick as indented `name = value` lines so a
/// terminal session stays readable; `--raw` bypasses this for pipelines.
void print_tick(const service::JsonValue& doc, std::ostream& out) {
  const service::JsonValue* tick = doc.find("tick");
  const service::JsonValue* seq = doc.find("seq");
  const service::JsonValue* closing = doc.find("closing");
  out << util::strf(
      "tick %.0f  seq %.0f%s\n",
      tick != nullptr && tick->is_number() ? tick->as_number() : 0.0,
      seq != nullptr && seq->is_number() ? seq->as_number() : 0.0,
      closing != nullptr && closing->is_bool() && closing->as_bool()
          ? "  (closing: server is draining)"
          : "");
  const service::JsonValue* counters = doc.find("counters");
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, v] : counters->members()) {
      if (v.is_number()) {
        out << util::strf("  %s = %.0f\n", name.c_str(), v.as_number());
      }
    }
  }
  const service::JsonValue* gauges = doc.find("gauges");
  if (gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, v] : gauges->members()) {
      if (v.is_number()) {
        out << util::strf("  %s = %g\n", name.c_str(), v.as_number());
      }
    }
  }
  const service::JsonValue* histograms = doc.find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, h] : histograms->members()) {
      if (!h.is_object()) continue;
      const service::JsonValue* count = h.find("count");
      const service::JsonValue* p50 = h.find("p50");
      const service::JsonValue* p99 = h.find("p99");
      out << util::strf(
          "  %s: count %.0f, p50 %g, p99 %g\n", name.c_str(),
          count != nullptr && count->is_number() ? count->as_number() : 0.0,
          p50 != nullptr && p50->is_number() ? p50->as_number() : 0.0,
          p99 != nullptr && p99->is_number() ? p99->as_number() : 0.0);
    }
  }
}

// Streaming telemetry client: sends one subscribe, prints the ack facts,
// then renders metric-delta ticks until the server's tick budget runs out,
// a drain writes the closing tick, or the connection drops.
int cmd_watch(util::CliFlags& flags, int argc, const char* const* argv,
              std::ostream& out, std::ostream& err) {
  flags.define("host", "cooloptd address", "127.0.0.1");
  flags.define("port", "cooloptd port", "7077");
  flags.define("id", "subscribe request id, echoed in every tick", "1");
  flags.define("interval-ms",
               "milliseconds between ticks (the server clamps out-of-range "
               "values and echoes the effective interval in the ack)",
               "1000");
  flags.define("ticks", "stop after N ticks (0 = stream until drain)", "0");
  flags.define("raw", "print raw NDJSON tick lines instead of rendering", "false");
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    err << error << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    out << flags.usage("cooloptctl watch");
    return 0;
  }

  const int interval_ms = flags.get_int("interval-ms", 1000);
  const int ticks = flags.get_int("ticks", 0);
  if (interval_ms <= 0 || ticks < 0) {
    err << "watch: --interval-ms must be positive, --ticks non-negative\n";
    return 2;
  }
  service::WireRequest request;
  request.verb = service::Verb::kSubscribe;
  request.id = static_cast<uint64_t>(flags.get_int("id", 1));
  request.interval_ms = static_cast<uint64_t>(interval_ms);
  request.ticks = static_cast<uint64_t>(ticks);

  service::ServiceClient client;
  if (!client.connect(flags.get_string("host", "127.0.0.1"),
                      static_cast<uint16_t>(flags.get_int("port", 7077)))) {
    err << client.last_error() << "\n";
    return 1;
  }
  const std::optional<std::string> ack =
      client.call(service::encode_request(request));
  if (!ack.has_value()) {
    err << client.last_error() << "\n";
    return 1;
  }
  service::JsonValue doc;
  std::string parse_error;
  if (!service::parse_json(*ack, doc, parse_error)) {
    err << "watch: unparseable ack: " << parse_error << "\n";
    return 1;
  }
  const service::JsonValue* ok = doc.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    err << *ack << "\n";
    return 1;
  }
  const bool raw = flags.get_bool("raw", false);
  // The ack echoes the budget the server accepted; counting received ticks
  // against it is what ends a bounded watch (the server stops streaming
  // after the budget but keeps the connection open for other verbs).
  const service::JsonValue* result = doc.find("result");
  const service::JsonValue* accepted =
      result != nullptr ? result->find("ticks") : nullptr;
  const uint64_t budget =
      accepted != nullptr && accepted->is_number()
          ? static_cast<uint64_t>(accepted->as_number())
          : static_cast<uint64_t>(ticks);
  if (!raw) {
    const service::JsonValue* eff =
        result != nullptr ? result->find("interval_ms") : nullptr;
    out << util::strf(
        "subscribed (every %.0f ms%s); ctrl-c to stop\n",
        eff != nullptr && eff->is_number()
            ? eff->as_number()
            : static_cast<double>(interval_ms),
        ticks > 0 ? util::strf(", %d ticks", ticks).c_str() : "");
  }

  uint64_t received = 0;
  for (;;) {
    const std::optional<std::string> line = client.recv_line();
    if (!line.has_value()) {
      // EOF without a closing tick: the connection dropped.
      return 0;
    }
    if (raw) {
      out << *line << "\n";
    }
    service::JsonValue tick_doc;
    if (!service::parse_json(*line, tick_doc, parse_error)) continue;
    if (!raw) print_tick(tick_doc, out);
    const service::JsonValue* closing = tick_doc.find("closing");
    if (closing != nullptr && closing->is_bool() && closing->as_bool()) {
      return 0;
    }
    ++received;
    if (budget > 0 && received >= budget) return 0;
  }
}

}  // namespace

int run_cooloptctl(int argc, const char* const* argv, std::ostream& out,
                   std::ostream& err) {
  // Peel off the global observability flags before command dispatch so every
  // command gains --metrics-out/--trace-out without declaring them; the
  // session flushes its exports when this function returns.
  std::string metrics_out;
  std::string trace_out;
  const std::vector<std::string> args = obs::strip_obs_flags(
      std::vector<std::string>(argv, argv + argc), metrics_out, trace_out);
  obs::ObsSession obs_session(metrics_out, trace_out);
  std::vector<const char*> argv_stripped;
  argv_stripped.reserve(args.size());
  for (const std::string& a : args) argv_stripped.push_back(a.c_str());
  argc = static_cast<int>(argv_stripped.size());
  argv = argv_stripped.data();

  if (argc < 2) {
    err << kUsage;
    return 2;
  }
  const std::string command = argv[1];
  // Re-point argv so each command's CliFlags sees its own flags.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;

  util::CliFlags flags;
  try {
    if (command == "profile") return cmd_profile(flags, sub_argc, sub_argv, out, err);
    if (command == "plan") return cmd_plan(flags, sub_argc, sub_argv, out, err);
    if (command == "audit") return cmd_audit(flags, sub_argc, sub_argv, out, err);
    if (command == "sweep") return cmd_sweep(flags, sub_argc, sub_argv, out, err);
    if (command == "frontier") return cmd_frontier(flags, sub_argc, sub_argv, out, err);
    if (command == "inject") return cmd_inject(flags, sub_argc, sub_argv, out, err);
    if (command == "client") return cmd_client(flags, sub_argc, sub_argv, out, err);
    if (command == "watch") return cmd_watch(flags, sub_argc, sub_argv, out, err);
  } catch (const std::exception& e) {
    err << "cooloptctl " << command << ": " << e.what() << "\n";
    return 1;
  }
  if (command == "--help" || command == "help") {
    out << kUsage;
    return 0;
  }
  err << "unknown command '" << command << "'\n\n" << kUsage;
  return 2;
}

}  // namespace coolopt::tools
