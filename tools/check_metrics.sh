#!/usr/bin/env bash
# Metrics-catalog drift check: every metric family emitted from src/ via the
# obs helpers (obs::count / obs::gauge_set / obs::observe) must have a row in
# the docs/observability.md catalog, or the check fails. This is the inverse
# direction of tools/check_docs.sh, which verifies documented names exist in
# code; together the catalog and the instrumentation cannot drift apart.
# Registered as the `check_metrics` ctest; run manually from the repository
# root as `tools/check_metrics.sh`.
set -u

cd "$(dirname "$0")/.." || exit 2

CATALOG=docs/observability.md
if [ ! -f "$CATALOG" ]; then
  echo "check_metrics: $CATALOG missing" >&2
  exit 2
fi

failures=0
emitted=$(grep -rhoE 'obs::(count|gauge_set|observe|maybe_histogram)\("[^"]+"' src |
  sed -E 's/.*\("([^"]+)"/\1/' | sort -u)

if [ -z "$emitted" ]; then
  echo "check_metrics: found no instrumented sites under src/ — the grep is broken" >&2
  exit 2
fi

count=0
for name in $emitted; do
  count=$((count + 1))
  if ! grep -Fq "\`$name\`" "$CATALOG"; then
    echo "check_metrics: \`$name\` is emitted in src/ but missing from $CATALOG" >&2
    failures=$((failures + 1))
  fi
done

# Required families: the telemetry-streaming and tracing surface must stay
# both emitted and cataloged — these names are load-bearing for the
# `subscribe` stream consumers and the docs' ops guidance, so a rename or
# removal has to show up here, not in a consumer.
required="service.telemetry.subscribed service.telemetry.subscribers
service.telemetry.ticks service.telemetry.dropped_ticks
service.trace.requests
service.deadline.expired fleet.shards_down fleet.redistributed_load"
for name in $required; do
  if ! printf '%s\n' "$emitted" | grep -Fxq "$name"; then
    echo "check_metrics: required metric \`$name\` is no longer emitted from src/" >&2
    failures=$((failures + 1))
  fi
  if ! grep -Fq "\`$name\`" "$CATALOG"; then
    echo "check_metrics: required metric \`$name\` has no catalog row in $CATALOG" >&2
    failures=$((failures + 1))
  fi
done

if [ "$failures" -gt 0 ]; then
  echo "check_metrics: $failures undocumented metric(s)" >&2
  exit 1
fi
echo "check_metrics: OK ($count emitted metric names all cataloged)"
