#!/usr/bin/env bash
# Docs drift check: every inline-code reference in the docs — file paths,
# coolopt:: symbols, CLI flags, metric names, test/field identifiers — must
# resolve against the tree, or the check fails. Registered as the `check_docs`
# ctest; run manually from the repository root as `tools/check_docs.sh`
# (optionally passing an explicit list of markdown files).
#
# What is checked, per inline `code` span:
#   * `--some-flag ...`        -> the flag string appears in src/tools/bench
#   * `path/to/file.ext`,
#     `profiling/foo.*`        -> exists (repo-relative, or under src/)
#   * `a.dotted.name`          -> appears verbatim (metric / schema names)
#   * `Ns::Type::member`       -> each distinctive component appears as a word
#   * `snake_case` / `CamelCase` identifiers -> appear as a word
# Math snippets, short tokens (< 4 chars) and plain lowercase words are
# deliberately ignored — they are prose, not references.
set -u

cd "$(dirname "$0")/.." || exit 2

DOCS=("$@")
if [ ${#DOCS[@]} -eq 0 ]; then
  DOCS=(docs/README.md docs/model.md docs/simulator.md
        docs/consolidation.md docs/observability.md docs/architecture.md
        docs/evaluation.md docs/robustness.md docs/service.md
        docs/scale.md)
fi

CODE_DIRS=(src tests bench tools examples)
failures=0

fail() {
  echo "check_docs: $1: unresolved reference: $2" >&2
  failures=$((failures + 1))
}

grep_code() {  # grep_code <extra-grep-args...> -e <pattern>
  grep -rq --include='*.h' --include='*.cpp' --include='*.sh' \
      --include='CMakeLists.txt' "$@" "${CODE_DIRS[@]}"
}

check_path() {  # repo-relative path, possibly a `base.*` glob or extensionless
  local doc="$1" p="$2" g="${2%\*}"
  if compgen -G "${g}*" > /dev/null || compgen -G "src/${g}*" > /dev/null; then
    return 0
  fi
  fail "$doc" "$p"
}

check_ident() {  # one identifier component; silently skips non-references
  local doc="$1" id="$2"
  [[ "$id" =~ ^[A-Za-z_][A-Za-z0-9_]*$ ]] || return 0
  [ "${#id}" -ge 4 ] || return 0
  if [[ "$id" != *_* ]]; then
    # No underscore: only check CamelCase (mixed upper/lower) names.
    [[ "$id" =~ [A-Z] && "$id" =~ [a-z] ]] || return 0
  fi
  grep_code -w -e "$id" || fail "$doc" "$id"
}

check_token() {
  local doc="$1" tok="$2"
  tok="${tok#\"}"; tok="${tok%\"}"           # strip surrounding quotes
  tok="$(printf '%s' "$tok" | sed -E 's/\([^()]*\)$//')"  # drop arg lists

  if [[ "$tok" == --* ]]; then               # CLI flag (maybe with operands)
    local flag
    flag="$(printf '%s' "$tok" | sed -E 's/^(--[A-Za-z0-9-]+).*/\1/')"
    grep_code -F -e "$flag" || fail "$doc" "$flag"
    return
  fi

  # Anything with spaces or math symbols is prose/formula, not a reference.
  [[ "$tok" =~ ^[A-Za-z0-9_.:/*-]+$ ]] || return 0

  if [[ "$tok" == */* ]]; then
    check_path "$doc" "$tok"
  elif [[ "$tok" == *::* ]]; then
    local part
    for part in ${tok//::/ }; do
      check_ident "$doc" "$part"
    done
  elif [[ "$tok" =~ ^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$ ]]; then
    grep_code -F -e "$tok" || fail "$doc" "$tok"
  else
    check_ident "$doc" "$tok"
  fi
}

# No orphan pages: every docs/*.md must be in the registered list above,
# or it would silently escape the drift check (and the docs/README.md
# index). Only enforced for the default list — an explicit argument list
# is a deliberate subset.
if [ $# -eq 0 ]; then
  for page in docs/*.md; do
    registered=0
    for doc in "${DOCS[@]}"; do
      [ "$page" = "$doc" ] && registered=1 && break
    done
    if [ "$registered" -eq 0 ]; then
      fail "$page" "(page not registered in check_docs.sh DOCS list)"
    fi
  done
fi

for doc in "${DOCS[@]}"; do
  if [ ! -f "$doc" ]; then
    fail "$doc" "(file missing)"
    continue
  fi
  while IFS= read -r span; do
    check_token "$doc" "$span"
  done < <(grep -o '`[^`]*`' "$doc" | sed 's/^`//; s/`$//')
done

if [ "$failures" -gt 0 ]; then
  echo "check_docs: $failures unresolved reference(s)" >&2
  exit 1
fi
echo "check_docs: OK (${DOCS[*]})"
