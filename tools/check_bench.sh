#!/usr/bin/env bash
# Bench-artifact shape check: every BENCH_*.json a perf binary emitted at the
# repository root must be a well-formed result file —
#
#   * valid JSON with the required top-level keys: "bench" (non-empty
#     string), "cases" (non-empty array), "pass" (boolean);
#   * every case is an object with a numeric "n";
#   * the n-sweep is monotone non-decreasing across cases, so downstream
#     trajectory tooling can diff runs case-by-case without re-sorting.
#
# Finding no BENCH_*.json at all passes with a note: benches are run on
# demand (`build/bench/perf_scale` etc.), not as part of the test suite.
# Registered as the `check_bench` ctest; run manually from the repository
# root as `tools/check_bench.sh`.
set -u

cd "$(dirname "$0")/.." || exit 2

if ! command -v jq >/dev/null 2>&1; then
  echo "check_bench: jq not found on PATH" >&2
  exit 2
fi

shopt -s nullglob
files=(BENCH_*.json)
if [ "${#files[@]}" -eq 0 ]; then
  echo "check_bench: no BENCH_*.json artifacts present (run the perf benches to emit them) — nothing to validate"
  exit 0
fi

failures=0
for f in "${files[@]}"; do
  if ! jq empty "$f" 2>/dev/null; then
    echo "check_bench: $f is not valid JSON" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! jq -e '(.bench | type == "string" and length > 0)
              and (.cases | type == "array" and length > 0)
              and (.pass | type == "boolean")' "$f" >/dev/null; then
    echo "check_bench: $f lacks the required shape (string \"bench\", non-empty array \"cases\", boolean \"pass\")" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! jq -e '.cases | all(type == "object" and (.n | type == "number"))' "$f" >/dev/null; then
    echo "check_bench: $f has a case without a numeric \"n\"" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! jq -e '[.cases[].n] | . == sort' "$f" >/dev/null; then
    echo "check_bench: $f case sizes are not monotone non-decreasing: $(jq -c '[.cases[].n]' "$f")" >&2
    failures=$((failures + 1))
    continue
  fi
  # Bench-specific schema: the engine hot-path artifact carries the warm
  # p50 pair, the derived speedup, the memo hit count, and the bit-equality
  # verdict per case (perf_engine's self-gated targets).
  if [ "$(jq -r '.bench' "$f")" = "engine" ]; then
    if ! jq -e '.cases | all((.full_p50_us | type == "number")
                             and (.memo_p50_us | type == "number")
                             and (.speedup | type == "number")
                             and (.memo_hits | type == "number")
                             and (.identical | type == "boolean"))' "$f" >/dev/null; then
      echo "check_bench: $f lacks the engine case schema (numeric full_p50_us/memo_p50_us/speedup/memo_hits, boolean identical)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! jq -e '.cases | all(.identical)' "$f" >/dev/null; then
      echo "check_bench: $f reports a case where memo-on plans diverged from memo-off (identical=false)" >&2
      failures=$((failures + 1))
      continue
    fi
  fi
  # Bench-specific schema: the service artifact carries throughput and tail
  # latencies per client-count case plus the subscriber-overhead block
  # (streaming telemetry must not cost the plan path more than 5%).
  if [ "$(jq -r '.bench' "$f")" = "service" ]; then
    if ! jq -e '.cases | all((.clients | type == "number")
                             and (.req_per_s | type == "number")
                             and (.p50_us | type == "number")
                             and (.p99_us | type == "number")
                             and (.p999_us | type == "number")
                             and (.mismatches == 0))' "$f" >/dev/null; then
      echo "check_bench: $f lacks the service case schema (numeric clients/req_per_s/p50_us/p99_us/p999_us, mismatches == 0)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! jq -e '.subscribers | type == "object"
                and (.subscribers | type == "number")
                and (.interval_ms | type == "number")
                and (.baseline_req_per_s | type == "number")
                and (.with_subscribers_req_per_s | type == "number")
                and (.overhead_pct | type == "number")
                and (.ticks_received | type == "number")
                and (.pass | type == "boolean")' "$f" >/dev/null; then
      echo "check_bench: $f lacks the subscriber-overhead block (object \"subscribers\" with numeric subscribers/interval_ms/baseline_req_per_s/with_subscribers_req_per_s/overhead_pct/ticks_received, boolean pass)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! jq -e '.subscribers | (.overhead_pct <= 5) and .pass' "$f" >/dev/null; then
      echo "check_bench: $f reports subscriber overhead above the 5% budget (overhead_pct=$(jq -r '.subscribers.overhead_pct' "$f"))" >&2
      failures=$((failures + 1))
      continue
    fi
  fi
  # Bench-specific schema: the chaos artifact carries goodput per
  # client-count case, the fired-fault counts, the retry histogram, and the
  # degraded-plan reproducibility verdict (perf_chaos's self-gated targets:
  # goodput >= 95% with faults firing, and a fault never corrupts bytes).
  if [ "$(jq -r '.bench' "$f")" = "chaos" ]; then
    if ! jq -e '.cases | all((.clients | type == "number")
                             and (.calls | type == "number")
                             and (.succeeded | type == "number")
                             and (.goodput_pct | type == "number")
                             and (.retried_calls | type == "number")
                             and (.mismatches == 0))' "$f" >/dev/null; then
      echo "check_bench: $f lacks the chaos case schema (numeric clients/calls/succeeded/goodput_pct/retried_calls, mismatches == 0)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! jq -e '(.goodput_pct | type == "number" and . >= 95)
                and (.cases | all(.goodput_pct >= 95))' "$f" >/dev/null; then
      echo "check_bench: $f reports goodput below the 95% floor (goodput_pct=$(jq -r '.goodput_pct' "$f"))" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! jq -e '.drops | type == "object"
                and (.dropped_connections | type == "number")
                and (.delayed_reads | type == "number")
                and (.truncated_writes | type == "number")
                and (.stalled_solves | type == "number")' "$f" >/dev/null; then
      echo "check_bench: $f lacks the fired-fault counts (object \"drops\" with numeric dropped_connections/delayed_reads/truncated_writes/stalled_solves)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! jq -e '.retry_histogram | type == "array" and length > 0
                and all((.attempts | type == "number")
                        and (.calls | type == "number"))' "$f" >/dev/null; then
      echo "check_bench: $f lacks the retry histogram (non-empty array of {attempts, calls})" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! jq -e '.reproducible == true' "$f" >/dev/null; then
      echo "check_bench: $f reports a degraded plan that did not reproduce bit-for-bit (reproducible=$(jq -r '.reproducible' "$f"))" >&2
      failures=$((failures + 1))
      continue
    fi
  fi
  echo "check_bench: $f ok ($(jq -r '.bench' "$f"), $(jq '.cases | length' "$f") cases, pass=$(jq -r '.pass' "$f"))"
done

if [ "$failures" -gt 0 ]; then
  echo "check_bench: $failures malformed artifact(s)" >&2
  exit 1
fi
echo "check_bench: ${#files[@]} artifact(s) validated"
