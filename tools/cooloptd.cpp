// cooloptd — the long-running planning service daemon.
//
// Serves the newline-delimited JSON protocol of docs/service.md on a TCP
// port, backed by the shared PlanEngine/EvalEngine stack. Two modes:
//
//   cooloptd --servers 20 --racks 1 --seed 42   # simulator-backed: all verbs
//   cooloptd --model room_model.csv             # model-backed: ping/plan only
//
// Serving knobs: --host / --port (0 = ephemeral), --queue-capacity (the
// admission bound behind every shed threshold), --workers (engine
// threads), --max-connections. See docs/service.md for tuning guidance.
//
// Deterministic fault injection (service/chaos.h; all default-off):
// --chaos-drop-conn-pct / --chaos-delay-read-pct /
// --chaos-truncate-write-pct / --chaos-stall-solve-pct arm the four
// hooks, --chaos-seed fixes the fault streams. Any armed hook prints a
// CHAOS banner after the serving line.
//
// SIGTERM / SIGINT trigger a graceful drain: the listener closes, every
// queued request still gets its response, in-flight connections are then
// closed, and the process exits 0. The handler only writes one byte to a
// self-pipe; all real work happens on the main thread.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/session.h"
#include "profiling/profile_io.h"
#include "service/server.h"
#include "util/cli.h"
#include "util/strings.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // write(2) is async-signal-safe; the return value is irrelevant (the
  // pipe being full already means a wakeup is pending).
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coolopt;

  std::string metrics_out;
  std::string trace_out;
  const std::vector<std::string> args = obs::strip_obs_flags(
      std::vector<std::string>(argv, argv + argc), metrics_out, trace_out);
  std::vector<const char*> argv_stripped;
  argv_stripped.reserve(args.size());
  for (const std::string& a : args) argv_stripped.push_back(a.c_str());

  util::CliFlags flags;
  flags.define("host", "bind address", "127.0.0.1");
  flags.define("port", "TCP port (0 picks an ephemeral port)", "7077");
  flags.define("model", "fitted model CSV; serve ping/plan only, no simulator", "");
  flags.define("servers", "machines in the simulated room", "20");
  flags.define("racks", "racks in the simulated room", "1");
  flags.define("seed", "simulation seed", "42");
  flags.define("fleet-shards",
               "split the room into N shards and serve fleetplan (0 = monolithic)",
               "0");
  flags.define("queue-capacity", "admission queue bound (requests)", "256");
  flags.define("workers", "engine worker threads (0 = hardware default)", "0");
  flags.define("max-connections", "concurrent client connections", "64");
  flags.define("chaos-seed",
               "seed for the deterministic fault injector (docs/robustness.md)",
               "1");
  flags.define("chaos-drop-conn-pct",
               "percent of accepted connections to close immediately", "0");
  flags.define("chaos-delay-read-pct",
               "percent of socket reads to delay before parsing", "0");
  flags.define("chaos-truncate-write-pct",
               "percent of response writes to truncate mid-frame", "0");
  flags.define("chaos-stall-solve-pct",
               "percent of dispatched solves to stall before running", "0");
  std::string error;
  if (!flags.parse(static_cast<int>(argv_stripped.size()),
                   argv_stripped.data(), error)) {
    std::cerr << error << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("cooloptd — the planning service daemon");
    return 0;
  }

  service::ServiceConfig config;
  config.host = flags.get_string("host", "127.0.0.1");
  config.port = static_cast<uint16_t>(flags.get_int("port", 7077));
  config.queue_capacity =
      static_cast<size_t>(flags.get_int("queue-capacity", 256));
  config.workers = static_cast<size_t>(flags.get_int("workers", 0));
  config.max_connections =
      static_cast<size_t>(flags.get_int("max-connections", 64));
  config.fleet_shards = static_cast<size_t>(flags.get_int("fleet-shards", 0));
  config.chaos.seed = static_cast<uint64_t>(flags.get_int("chaos-seed", 1));
  config.chaos.drop_connection_pct =
      flags.get_double("chaos-drop-conn-pct", 0.0);
  config.chaos.delay_read_pct = flags.get_double("chaos-delay-read-pct", 0.0);
  config.chaos.truncate_write_pct =
      flags.get_double("chaos-truncate-write-pct", 0.0);
  config.chaos.stall_solve_pct =
      flags.get_double("chaos-stall-solve-pct", 0.0);
  if (config.chaos.drop_connection_pct < 0.0 ||
      config.chaos.delay_read_pct < 0.0 ||
      config.chaos.truncate_write_pct < 0.0 ||
      config.chaos.stall_solve_pct < 0.0) {
    std::cerr << "chaos percentages must be non-negative\n";
    return 2;
  }
  const std::string model_path = flags.get_string("model", "");
  if (!model_path.empty()) {
    try {
      config.model = core::share_model(profiling::load_model(model_path));
    } catch (const std::exception& e) {
      std::cerr << "cannot load model: " << e.what() << "\n";
      return 2;
    }
  } else {
    config.eval.room.num_servers =
        static_cast<size_t>(flags.get_int("servers", 20));
    config.eval.room.num_racks = static_cast<size_t>(flags.get_int("racks", 1));
    config.eval.room.seed = static_cast<uint64_t>(flags.get_int("seed", 42));
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "pipe() failed\n";
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  // The ObsSession flushes --metrics-out/--trace-out when it goes out of
  // scope, i.e. after the drain — the dump includes the final service.*
  // values.
  obs::ObsSession obs_session(metrics_out, trace_out);
  // The subscribe verb streams registry deltas, so the daemon always keeps
  // a registry attached: without --metrics-out the session attaches
  // nothing, and this process-local one (no file export) feeds the
  // broadcaster instead. The scope detaches it before it is destroyed.
  obs::MetricsRegistry standalone_registry;
  std::optional<obs::ScopedObservation> standalone_scope;
  if (!obs_session.active()) standalone_scope.emplace(&standalone_registry);
  try {
    service::PlanningService server(std::move(config));
    server.start();
    std::cout << util::strf(
        "cooloptd serving %zu machines on %s:%u (%s; queue %zu, %zu workers)\n",
        server.info().machines, flags.get_string("host", "127.0.0.1").c_str(),
        static_cast<unsigned>(server.port()),
        server.info().sim_backed ? "simulator-backed" : "model-backed",
        server.info().queue_capacity, server.info().workers);
    if (server.chaos() != nullptr) {
      const service::ChaosOptions& chaos = server.chaos()->options();
      std::cout << util::strf(
          "cooloptd CHAOS enabled (seed %llu): drop-conn %.2f%%, delay-read "
          "%.2f%%, truncate-write %.2f%%, stall-solve %.2f%%\n",
          static_cast<unsigned long long>(chaos.seed),
          chaos.drop_connection_pct, chaos.delay_read_pct,
          chaos.truncate_write_pct, chaos.stall_solve_pct);
    }
    std::cout.flush();

    // Block until a termination signal lands on the self-pipe.
    pollfd pfd{g_signal_pipe[0], POLLIN, 0};
    for (;;) {
      const int ready = ::poll(&pfd, 1, -1);
      if (ready > 0 || (ready < 0 && errno != EINTR)) break;
    }
    std::cout << "cooloptd draining...\n";
    std::cout.flush();
    server.stop();
    // Per-drain on-demand export (the destructor would flush too; doing it
    // here stamps the post-drain books the moment they are final, and a
    // future reload/re-start cycle would get one export per drain).
    obs_session.flush();
    std::cout << "cooloptd drained; bye\n";
  } catch (const std::exception& e) {
    std::cerr << "cooloptd: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
