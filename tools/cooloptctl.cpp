// cooloptctl — operator command line for the coolopt library.
#include <iostream>

#include "tools/ctl_commands.h"

int main(int argc, char** argv) {
  return coolopt::tools::run_cooloptctl(argc, argv, std::cout, std::cerr);
}
