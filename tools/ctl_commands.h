// cooloptctl — the operator command-line tool, as a library so the
// subcommands are unit-testable.
//
// Subcommands:
//   profile   build/profile a simulated room and save the fitted model
//   plan      compute an operating point from a saved model (pure model)
//   audit     plan + feasibility/optimality audit report
//   sweep     run scenarios across the load axis on a simulated room
//   frontier  print the maxL power-budget capacity frontier of a model
#pragma once

#include <iosfwd>

namespace coolopt::tools {

/// Entry point (argv[0] is the program name). Writes human-readable output
/// to `out` and diagnostics to `err`; returns a process exit code.
int run_cooloptctl(int argc, const char* const* argv, std::ostream& out,
                   std::ostream& err);

}  // namespace coolopt::tools
